"""Peeling-sequence reordering: the engine behind Spade's incrementality.

Both insertion granularities of the paper — a single edge (Section 4.1,
cases 1–3) and a batch of edges (Section 4.2, Algorithm 2 with the
black/gray/white colouring) — reduce to the same reordering loop.  This
module implements that loop once, carefully, and the thin wrappers in
:mod:`repro.core.insertion` and :mod:`repro.core.batch` provide the
paper-facing entry points.

How the reordering works
------------------------
The maintained state is a valid greedy peeling sequence ``O`` with weights
``Δ`` for the graph *before* the update.  After the new edges are applied,
only a subset of positions can change:

* **Black** vertices are the *seeds*: for every inserted edge, the endpoint
  that appears earlier in ``O`` (its suffix weight grew by the edge weight),
  plus every brand-new vertex (prepended to the head of ``O``).
* **Gray** vertices are the collateral: whenever a vertex enters the pending
  queue ``T``, its neighbours may no longer trust their stored weight and
  are coloured gray.
* **White** vertices are untouched: their stored weight still equals their
  true peeling weight, so they can be re-emitted without looking at the
  graph.

The loop scans ``O`` from the first seed, maintaining a priority queue ``T``
of displaced vertices keyed by their *recovered* peeling weight.  At each
step it compares the head of ``T`` with the next sequence vertex:

* ``Case 1`` — the head of ``T`` is smaller: pop it, place it, and decrease
  the priorities of its neighbours still in ``T``.
* ``Case 2(a)`` — the sequence vertex is black or gray: recover its true
  weight and move it into ``T``.
* ``Case 2(b)`` — the sequence vertex is white: place it as-is.

When ``T`` drains, the contiguous *island* of rewritten positions is flushed
back into the sequence and the scan jumps directly to the next seed — the
skip that gives Spade its affected-area complexity
``O(|E_T| + |E_T| log |V_T|)``.

Hot-path layout
---------------
The loop runs entirely over the dense ids assigned by the graph backend's
interner: heap entries are ``(weight, id)`` pairs (the id *is* the
tie-break key, since ids are assigned in graph insertion order), colour
sets are numpy boolean arrays indexed by id, and weight recovery gathers a
whole neighbourhood — ids, weights, and their positions in the state's
position buffer — as arrays from :meth:`incident_arrays_id` and reduces
them with vectorised masks instead of per-neighbour Python dispatch.
Labels never enter the loop.

Tie-breaking matches the static algorithm (graph insertion order == dense
id), so the reordered sequence is not merely *a* valid peeling sequence of
``G ⊕ ΔG`` but exactly the one a from-scratch run would produce.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import native as _native
from repro.obs import profile as _obs_profile
from repro.graph.backend import SMALL_DEGREE
from repro.graph.graph import Vertex
from repro.core.state import PeelingState

__all__ = ["ReorderStats", "reorder_after_insertions"]


@dataclass
class ReorderStats:
    """Cost accounting for one maintenance pass (the paper's affected area)."""

    #: Number of vertices that entered the pending queue ``T`` (``|V_T|``).
    queued_vertices: int = 0
    #: Number of vertices written back in a different position or with a new weight.
    moved_vertices: int = 0
    #: Number of sequence positions examined by the scan.
    scanned_positions: int = 0
    #: Number of edge traversals performed (``|E_T|`` up to constants).
    edge_traversals: int = 0
    #: Number of contiguous islands that were rewritten.
    islands: int = 0
    #: Number of suffix positions re-peeled by the deletion path (0 for inserts).
    repeeled_positions: int = 0

    def merge(self, other: "ReorderStats") -> None:
        """Accumulate another pass's counters into this one."""
        self.queued_vertices += other.queued_vertices
        self.moved_vertices += other.moved_vertices
        self.scanned_positions += other.scanned_positions
        self.edge_traversals += other.edge_traversals
        self.islands += other.islands
        self.repeeled_positions += other.repeeled_positions

    @property
    def affected_area(self) -> int:
        """A single scalar summary of the work performed."""
        return self.scanned_positions + self.edge_traversals


def reorder_after_insertions(
    state: PeelingState,
    seeds: Optional[Iterable[Vertex]] = None,
    *,
    seed_ids: Optional[Sequence[int]] = None,
) -> ReorderStats:
    """Reorder ``state`` after new edges have been applied to its graph.

    Parameters
    ----------
    state:
        The peeling state.  Its graph must already contain the inserted
        edges, new vertices must already be prepended to the sequence
        (:meth:`PeelingState.prepend_vertex`), and ``state.total`` must
        already account for the added suspiciousness.
    seeds:
        The black vertices as original labels: earlier-positioned endpoints
        of the inserted edges plus any brand-new vertices.
    seed_ids:
        The same, as dense ids (preferred on the hot path).  Exactly one of
        ``seeds`` / ``seed_ids`` should be provided.

    Returns
    -------
    ReorderStats
        Affected-area accounting for the pass.
    """
    stats = ReorderStats()
    graph = state.graph
    interner = graph.interner

    if seed_ids is None:
        seed_ids = []
        for vertex in seeds or ():
            vid = interner.get_id(vertex)
            if vid >= 0:
                seed_ids.append(vid)

    seed_ids = [vid for vid in set(seed_ids) if state.contains_id(vid)]
    n = len(state)
    if not seed_ids or n == 0:
        state.invalidate()
        return stats

    seed_positions = sorted(state.position_id(vid) for vid in seed_ids)
    _began = time.perf_counter()

    # --- native dispatch --------------------------------------------- #
    # The compiled kernel runs the identical scan (same cases, same float
    # association order, same heap pop order — see _kernels.c) over the
    # graph's pool pointer tables.  It needs the array backend (pointer
    # pools) and a reorder kernel that passed the pw_sum self-check; when
    # either is missing the python loop below serves, even under
    # kernel="native" — resolve_kernel already failed loud on the truly
    # unavailable cases (no compiler / failed build / failed self-check).
    if _native.resolve_kernel(getattr(state, "kernel", None)) == "native":
        nk = _native.get_kernels()
        if nk is not None and nk.reorder_ok and hasattr(graph, "native_adjacency"):
            result = _reorder_native(state, nk, seed_ids, seed_positions, stats)
            _obs_profile.record("reorder", "native", time.perf_counter() - _began)
            return result

    # Black (seed) and gray (collateral) vertices trigger the same action —
    # recover-and-queue — so one ``touched`` array serves both colours.
    # Both masks are persistent scratch owned by the state (all-False
    # between passes); this pass resets exactly the entries it sets, so a
    # single-edge update costs O(affected area), not O(|V|).
    touched, in_queue_mask = state.reorder_masks()
    touched[seed_ids] = True

    # The pending queue ``T``.  Queues are tiny for single-edge updates, so
    # the minimum is found by a linear scan over ``in_queue`` until the
    # queue outgrows ``_HEAP_THRESHOLD``; past that a lazy-deletion heap
    # takes over (keeping the paper's O(log |V_T|) bound for big batches).
    # ``heap is None`` means linear mode.
    _HEAP_THRESHOLD = 64
    heap: Optional[List[Tuple[float, int]]] = None
    in_queue: Dict[int, float] = {}
    # Every vertex that entered T, for the O(|E_T|) mask reset at the end.
    queued_log: List[int] = []

    buffer_ids: List[int] = []
    buffer_weights: List[float] = []

    # Local aliases for the sequence buffers; no prepend can happen during a
    # reorder, so the views stay valid for the whole pass.
    order_buf = state._order_buf
    weights_buf = state._weights_buf
    head = state._head
    pos_buf = state._pos_buf

    island_start = seed_positions[0]
    seed_cursor = 0

    # A vertex is *placed* (has its final position in the new sequence) iff
    # its recorded position lies before the current island: flushed islands
    # and skipped gaps end up before every later island, a queued vertex
    # always sits inside the current island (so its stale position can
    # never read as placed), and vertices re-emitted into the island buffer
    # are parked at a sentinel position *before* the island
    # (``emitted_pos``) until the flush writes their real one.  This makes
    # the placed test a single position gather.
    emitted_pos = head - 1

    def recover_weight(vid: int) -> float:
        """Recompute the true peeling weight of ``vid`` w.r.t. the remaining set.

        Placed neighbours are excluded from the weight; everything else —
        pending, still-to-scan, or in later islands — still counts.
        """
        ids, edge_weights = graph.incident_arrays_id(vid)
        degree = len(ids)
        total = graph.vertex_weight_id(vid)
        if degree:
            threshold = head + island_start  # buffer coordinates
            # Scalar/vector split mirrors the static peel's initial-weight
            # computation (same SMALL_DEGREE, same accumulation shape) so
            # recovered weights are bit-consistent with a from-scratch run.
            if degree <= SMALL_DEGREE:
                incident = 0.0
                for weight, position in zip(
                    edge_weights.tolist(), pos_buf[ids].tolist()
                ):
                    if position >= threshold:
                        incident += weight
                total += incident
            else:
                placed = pos_buf[ids] < threshold
                if not placed.any():
                    total += float(edge_weights.sum())
                elif not placed.all():
                    total += float(edge_weights[~placed].sum())
            # Entering T grays every neighbour: their stored weights can no
            # longer be trusted.  (The caller is about to queue ``vid``.)
            touched[ids] = True
        stats.edge_traversals += 2 * degree
        return total

    def push_to_queue(vid: int) -> None:
        """Case 2(a): recover the weight of ``vid``, queue it, gray its neighbours."""
        nonlocal heap
        weight = recover_weight(vid)
        queued_log.append(vid)
        in_queue[vid] = weight
        in_queue_mask[vid] = True
        if heap is not None:
            heapq.heappush(heap, (weight, vid))
        elif len(in_queue) > _HEAP_THRESHOLD:
            heap = [(w, v) for v, w in in_queue.items()]
            heapq.heapify(heap)
        stats.queued_vertices += 1

    def queue_head() -> Optional[Tuple[float, int]]:
        """Return the live minimum of ``T`` (with the ``(weight, id)`` order)."""
        if heap is None:
            best_weight = None
            best_vid = -1
            for vid, weight in in_queue.items():
                if (
                    best_weight is None
                    or weight < best_weight
                    or (weight == best_weight and vid < best_vid)
                ):
                    best_weight = weight
                    best_vid = vid
            if best_weight is None:
                return None
            return best_weight, best_vid
        while heap:
            weight, vid = heap[0]
            if in_queue.get(vid) != weight:
                heapq.heappop(heap)
                continue
            return weight, vid
        return None

    def place_from_queue(weight: float, vid: int) -> None:
        """Case 1: place the (validated) head of ``T``, lower its neighbours."""
        if heap is not None:
            heapq.heappop(heap)
        del in_queue[vid]
        in_queue_mask[vid] = False
        buffer_ids.append(vid)
        buffer_weights.append(weight)
        pos_buf[vid] = emitted_pos
        if not in_queue:
            # Nothing pending — no priorities to lower, skip the traversal.
            return
        ids, edge_weights = graph.incident_arrays_id(vid)
        degree = len(ids)
        stats.edge_traversals += degree
        if degree <= SMALL_DEGREE:
            for nbr, edge_weight in zip(ids.tolist(), edge_weights.tolist()):
                if nbr in in_queue:
                    lowered = in_queue[nbr] - edge_weight
                    in_queue[nbr] = lowered
                    if heap is not None:
                        heapq.heappush(heap, (lowered, nbr))
        elif degree:
            pending = in_queue_mask[ids]
            if pending.any():
                for nbr, edge_weight in zip(
                    ids[pending].tolist(), edge_weights[pending].tolist()
                ):
                    lowered = in_queue[nbr] - edge_weight
                    in_queue[nbr] = lowered
                    if heap is not None:
                        heapq.heappush(heap, (lowered, nbr))

    # Chunk sizes for the vectorised white-run scan: start narrow (short
    # runs are the common case and a 16-wide numpy op is cheap), widen
    # geometrically so long runs amortise the dispatch overhead.
    _SCAN_CHUNK_MIN = 16
    _SCAN_CHUNK_MAX = 512

    def emit_white_run(k: int, head_weight: float, head_vid: int) -> int:
        """Case 2(b), bulk: re-emit the run of white vertices starting at ``k``.

        Scans forward until the first position that triggers Case 1 (the
        queue head becomes the minimum) or Case 2(a) (a black/gray vertex),
        copying everything before it verbatim into the island buffer, and
        returns that stop position (or ``n``).  Neither re-emission nor the
        scan itself touches the heap, so the comparison key stays fixed for
        the whole run — which is what makes it vectorisable.
        """
        # Scalar fast path: a run often stops at its very first position
        # (another seed or a Case-1 trigger), and a pair of scalar reads
        # beats a numpy round-trip there.
        first_vid = int(order_buf[head + k])
        if touched[first_vid]:
            return k
        first_weight = float(weights_buf[head + k])
        if (head_weight, head_vid) < (first_weight, first_vid):
            return k
        chunk = _SCAN_CHUNK_MIN
        while k < n:
            a = head + k
            b = min(head + n, a + chunk)
            chunk = min(chunk * 4, _SCAN_CHUNK_MAX)
            seg_ids = order_buf[a:b]
            seg_weights = weights_buf[a:b]
            stop = (
                touched[seg_ids]
                | (seg_weights > head_weight)
                | ((seg_weights == head_weight) & (seg_ids > head_vid))
            )
            hit = int(np.argmax(stop)) if stop.any() else -1
            run = hit if hit >= 0 else b - a
            if run:
                buffer_ids.extend(seg_ids[:run].tolist())
                buffer_weights.extend(seg_weights[:run].tolist())
                pos_buf[seg_ids[:run]] = emitted_pos
                stats.scanned_positions += run
                k += run
            if hit >= 0:
                return k
        return k

    def flush_island(end: int) -> None:
        """Write the rebuilt island back into positions ``[island_start, end)``."""
        if not buffer_ids:
            return
        if len(buffer_ids) != end - island_start:
            raise AssertionError(
                "island accounting error: "
                f"{len(buffer_ids)} rebuilt vertices for span [{island_start}, {end})"
            )
        ids = np.asarray(buffer_ids, dtype=np.int32)
        new_weights = np.asarray(buffer_weights, dtype=np.float64)
        a = head + island_start
        b = head + end
        moved = int(
            np.count_nonzero(
                (order_buf[a:b] != ids) | (weights_buf[a:b] != new_weights)
            )
        )
        stats.moved_vertices += moved
        # write_segment_ids replaces the sentinel positions of the emitted
        # vertices with their final ones, so the placed test keeps working
        # for every later island.
        state.write_segment_ids(island_start, ids, new_weights)
        buffer_ids.clear()
        buffer_weights.clear()

    k = island_start
    try:
        while True:
            entry = queue_head()
            if entry is None:
                # The island is complete: flush it and jump to the next seed.
                heap = None  # back to linear-scan mode for the next island
                flush_island(k)
                while seed_cursor < len(seed_positions) and seed_positions[seed_cursor] < k:
                    seed_cursor += 1
                if seed_cursor >= len(seed_positions):
                    break
                island_start = k = seed_positions[seed_cursor]
                seed_cursor += 1
                stats.islands += 1
                # Seed the new island: the vertex at this position is black.
                stats.scanned_positions += 1
                push_to_queue(int(order_buf[head + k]))
                k += 1
                continue

            head_weight, head_vid = entry
            if k >= n:
                # The original sequence is exhausted: drain the queue.
                place_from_queue(head_weight, head_vid)
                continue

            # Case 2(b), vectorised: bulk re-emit the white run ahead of ``k``.
            k = emit_white_run(k, head_weight, head_vid)
            if k >= n:
                continue
            sequence_vid = int(order_buf[head + k])
            sequence_weight = float(weights_buf[head + k])
            stats.scanned_positions += 1
            if (head_weight, head_vid) < (sequence_weight, sequence_vid):
                # Case 1: the pending vertex is the true minimum.
                place_from_queue(head_weight, head_vid)
                continue
            # Case 2(a): black or gray — the stored weight cannot be trusted;
            # recover and queue.  (emit_white_run stopped here, so it is one
            # of the two.)
            push_to_queue(sequence_vid)
            k += 1
    finally:
        # Return the borrowed masks clean: reset exactly the entries this
        # pass set — the seeds, every queued vertex and its (grayed)
        # neighbourhood, and any in-queue flags left by an aborted pass.
        touched[seed_ids] = False
        for vid in queued_log:
            touched[vid] = False
            in_queue_mask[vid] = False
            ids, _weights = graph.incident_arrays_id(vid)
            if len(ids):
                touched[ids] = False

    _obs_profile.record("reorder", "python", time.perf_counter() - _began)
    state.invalidate()
    return stats


def _reorder_native(
    state: PeelingState,
    nk,
    seed_ids: Sequence[int],
    seed_positions: Sequence[int],
    stats: ReorderStats,
) -> ReorderStats:
    """Run the reorder pass through the compiled kernel (bit-identical).

    The kernel mutates the sequence buffers, position index and scratch
    masks in place exactly as the python loop does — including the
    finally-style mask reset on error paths — and reports the same
    affected-area counters.
    """
    graph = state.graph
    touched, in_queue_mask = state.reorder_masks()
    inq_val = state.reorder_queue_values()
    raw = nk.reorder(
        graph.native_adjacency(),
        graph._vw,
        state._order_buf,
        state._weights_buf,
        state._head,
        len(state),
        state._pos_buf,
        touched,
        in_queue_mask,
        inq_val,
        np.asarray(seed_ids, dtype=np.int32),
        np.asarray(seed_positions, dtype=np.int64),
        SMALL_DEGREE,
    )
    stats.queued_vertices = int(raw[0])
    stats.moved_vertices = int(raw[1])
    stats.scanned_positions = int(raw[2])
    stats.edge_traversals = int(raw[3])
    stats.islands = int(raw[4])
    state.invalidate()
    return stats
