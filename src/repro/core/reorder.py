"""Peeling-sequence reordering: the engine behind Spade's incrementality.

Both insertion granularities of the paper — a single edge (Section 4.1,
cases 1–3) and a batch of edges (Section 4.2, Algorithm 2 with the
black/gray/white colouring) — reduce to the same reordering loop.  This
module implements that loop once, carefully, and the thin wrappers in
:mod:`repro.core.insertion` and :mod:`repro.core.batch` provide the
paper-facing entry points.

How the reordering works
------------------------
The maintained state is a valid greedy peeling sequence ``O`` with weights
``Δ`` for the graph *before* the update.  After the new edges are applied,
only a subset of positions can change:

* **Black** vertices are the *seeds*: for every inserted edge, the endpoint
  that appears earlier in ``O`` (its suffix weight grew by the edge weight),
  plus every brand-new vertex (prepended to the head of ``O``).
* **Gray** vertices are the collateral: whenever a vertex enters the pending
  queue ``T``, its neighbours may no longer trust their stored weight and
  are coloured gray.
* **White** vertices are untouched: their stored weight still equals their
  true peeling weight, so they can be re-emitted without looking at the
  graph.

The loop scans ``O`` from the first seed, maintaining a priority queue ``T``
of displaced vertices keyed by their *recovered* peeling weight.  At each
step it compares the head of ``T`` with the next sequence vertex:

* ``Case 1`` — the head of ``T`` is smaller: pop it, place it, and decrease
  the priorities of its neighbours still in ``T``.
* ``Case 2(a)`` — the sequence vertex is black or gray: recover its true
  weight and move it into ``T``.
* ``Case 2(b)`` — the sequence vertex is white: place it as-is.

When ``T`` drains, the contiguous *island* of rewritten positions is flushed
back into the sequence and the scan jumps directly to the next seed — the
skip that gives Spade its affected-area complexity
``O(|E_T| + |E_T| log |V_T|)``.

Tie-breaking matches the static algorithm (graph insertion order), so the
reordered sequence is not merely *a* valid peeling sequence of ``G ⊕ ΔG``
but exactly the one a from-scratch run would produce.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import Vertex
from repro.core.state import PeelingState

__all__ = ["ReorderStats", "reorder_after_insertions"]


@dataclass
class ReorderStats:
    """Cost accounting for one reordering pass (the paper's affected area)."""

    #: Number of vertices that entered the pending queue ``T`` (``|V_T|``).
    queued_vertices: int = 0
    #: Number of vertices written back in a different position or with a new weight.
    moved_vertices: int = 0
    #: Number of sequence positions examined by the scan.
    scanned_positions: int = 0
    #: Number of edge traversals performed (``|E_T|`` up to constants).
    edge_traversals: int = 0
    #: Number of contiguous islands that were rewritten.
    islands: int = 0

    def merge(self, other: "ReorderStats") -> None:
        """Accumulate another pass's counters into this one."""
        self.queued_vertices += other.queued_vertices
        self.moved_vertices += other.moved_vertices
        self.scanned_positions += other.scanned_positions
        self.edge_traversals += other.edge_traversals
        self.islands += other.islands

    @property
    def affected_area(self) -> int:
        """A single scalar summary of the work performed."""
        return self.scanned_positions + self.edge_traversals


def reorder_after_insertions(
    state: PeelingState,
    seeds: Iterable[Vertex],
) -> ReorderStats:
    """Reorder ``state`` after new edges have been applied to its graph.

    Parameters
    ----------
    state:
        The peeling state.  Its graph must already contain the inserted
        edges, new vertices must already be prepended to the sequence
        (:meth:`PeelingState.prepend_vertex`), and ``state.total`` must
        already account for the added suspiciousness.
    seeds:
        The black vertices: earlier-positioned endpoints of the inserted
        edges plus any brand-new vertices.

    Returns
    -------
    ReorderStats
        Affected-area accounting for the pass.
    """
    stats = ReorderStats()
    graph = state.graph
    order = state.order
    weights = state.weights
    tie_break = state.tie_break
    n = len(order)

    seed_set = {v for v in seeds if v in state}
    if not seed_set or n == 0:
        state.invalidate()
        return stats

    seed_positions = sorted({state.position(v) for v in seed_set})

    black: Set[Vertex] = set(seed_set)
    gray: Set[Vertex] = set()

    heap: List[Tuple[float, int, Vertex]] = []
    in_queue: Dict[Vertex, float] = {}

    buffer_vertices: List[Vertex] = []
    buffer_weights: List[float] = []
    buffered: Set[Vertex] = set()

    island_start = seed_positions[0]
    seed_cursor = 0

    def is_placed(vertex: Vertex) -> bool:
        """True if ``vertex`` has already been (re)placed in the new sequence."""
        if vertex in buffered:
            return True
        if vertex in in_queue:
            return False
        return state.position(vertex) < island_start

    def recover_weight(vertex: Vertex) -> float:
        """Recompute the true peeling weight of ``vertex`` w.r.t. the remaining set."""
        total = graph.vertex_weight(vertex)
        traversed = 0
        for neighbor, edge_weight in graph.incident_items(vertex):
            traversed += 1
            if not is_placed(neighbor):
                total += edge_weight
        stats.edge_traversals += traversed
        return total

    def push_to_queue(vertex: Vertex) -> None:
        """Case 2(a): recover the weight of ``vertex``, queue it, gray its neighbours."""
        weight = recover_weight(vertex)
        in_queue[vertex] = weight
        heapq.heappush(heap, (weight, tie_break[vertex], vertex))
        stats.queued_vertices += 1
        for neighbor in graph.neighbors(vertex):
            gray.add(neighbor)
        stats.edge_traversals += graph.degree(vertex)

    def queue_head() -> Optional[Tuple[float, int, Vertex]]:
        """Return the live minimum of ``T`` (discarding stale heap entries)."""
        while heap:
            weight, tb, vertex = heap[0]
            if in_queue.get(vertex) != weight:
                heapq.heappop(heap)
                continue
            return weight, tb, vertex
        return None

    def place_from_queue() -> None:
        """Case 1: pop the head of ``T`` and lower its neighbours' priorities."""
        weight, _tb, vertex = heap[0]
        heapq.heappop(heap)
        del in_queue[vertex]
        buffer_vertices.append(vertex)
        buffer_weights.append(weight)
        buffered.add(vertex)
        for neighbor, edge_weight in graph.incident_items(vertex):
            stats.edge_traversals += 1
            if neighbor in in_queue:
                lowered = in_queue[neighbor] - edge_weight
                in_queue[neighbor] = lowered
                heapq.heappush(heap, (lowered, tie_break[neighbor], neighbor))

    def place_direct(vertex: Vertex, weight: float) -> None:
        """Case 2(b): the vertex is white — re-emit it with its stored weight."""
        buffer_vertices.append(vertex)
        buffer_weights.append(weight)
        buffered.add(vertex)

    def flush_island(end: int) -> None:
        """Write the rebuilt island back into positions ``[island_start, end)``."""
        if not buffer_vertices:
            return
        if len(buffer_vertices) != end - island_start:
            raise AssertionError(
                "island accounting error: "
                f"{len(buffer_vertices)} rebuilt vertices for span [{island_start}, {end})"
            )
        moved = 0
        for offset, (vertex, weight) in enumerate(zip(buffer_vertices, buffer_weights)):
            position = island_start + offset
            if order[position] != vertex or float(weights[position]) != weight:
                moved += 1
        stats.moved_vertices += moved
        state.write_segment(island_start, buffer_vertices, buffer_weights)
        buffer_vertices.clear()
        buffer_weights.clear()
        buffered.clear()

    k = island_start
    while True:
        head = queue_head()
        if head is None:
            # The island is complete: flush it and jump to the next seed.
            flush_island(k)
            while seed_cursor < len(seed_positions) and seed_positions[seed_cursor] < k:
                seed_cursor += 1
            if seed_cursor >= len(seed_positions):
                break
            island_start = k = seed_positions[seed_cursor]
            seed_cursor += 1
            stats.islands += 1
            # Seed the new island: the vertex at this position is black.
            stats.scanned_positions += 1
            push_to_queue(order[k])
            k += 1
            continue

        if k >= n:
            # The original sequence is exhausted: drain the queue.
            place_from_queue()
            continue

        head_weight, head_tb, _head_vertex = head
        sequence_vertex = order[k]
        sequence_weight = float(weights[k])
        stats.scanned_positions += 1
        if (head_weight, head_tb) < (sequence_weight, tie_break[sequence_vertex]):
            # Case 1: the pending vertex is the true minimum.
            place_from_queue()
            continue
        if sequence_vertex in black or sequence_vertex in gray:
            # Case 2(a): the stored weight cannot be trusted; recover and queue.
            push_to_queue(sequence_vertex)
        else:
            # Case 2(b): untouched vertex, re-emit as-is.
            place_direct(sequence_vertex, sequence_weight)
        k += 1

    state.invalidate()
    return stats
