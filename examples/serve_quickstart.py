"""Serving quickstart: run the HTTP serving layer and talk to it.

Run with::

    python examples/serve_quickstart.py

The example starts :class:`repro.serve.ServeApp` in-process (the same
stack ``python -m repro.serve`` boots as a daemon), then exercises the
whole surface over real HTTP: bulk and single-edge ingest with durable
acknowledgments, snapshot-isolated detection and community pages, a
per-vertex lookup, health and Prometheus metrics — and finally restarts
the app from its write-ahead log to show crash recovery.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import tempfile

from repro.api import EngineConfig
from repro.serve import ServeConfig
from repro.serve.app import ServeApp


def call(port: int, method: str, path: str, payload=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = response.read().decode()
        return response.status, (json.loads(data) if data.startswith(("{", "[")) else data)
    finally:
        connection.close()


async def run(config: EngineConfig, session) -> None:
    app = ServeApp(config)
    await app.start()
    try:
        # The HTTP calls are blocking; in this single-file demo they run
        # in the default executor so the server loop stays free.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, session, app.server.port, app.recovered_ops)
    finally:
        await app.stop()


def main() -> None:
    wal_dir = tempfile.mkdtemp(prefix="repro-serve-quickstart-")
    # One JSON document describes the whole deployment: engine knobs plus
    # the nested serving section (port 0 = pick a free port).
    config = EngineConfig(
        semantics="DW",
        backend="array",
        serve=ServeConfig(port=0, wal_dir=wal_dir, max_delay_ms=2.0),
    )

    def first_session(port: int, recovered: int) -> None:
        print(f"server on :{port} (fresh boot, {recovered} ops recovered)")

        # Bulk ingest: one request, one Algorithm-2 batch pass, one ack.
        ring = [["mule-1", "shady-shop", 40.0], ["mule-2", "shady-shop", 45.0],
                ["mule-3", "shady-shop", 42.0], ["mule-1", "mule-2", 12.0]]
        status, ack = call(port, "POST", "/v1/edges", {"edges": ring})
        print(f"bulk ingest     -> {status} {ack}")

        # Single-edge ingest: the ack carries the WAL sequence — the edge
        # is on disk and applied before the 200 arrives.
        status, ack = call(port, "POST", "/v1/edges",
                           {"src": "alice", "dst": "book-shop", "weight": 12.0})
        print(f"single ingest   -> {status} {ack}")

        # Snapshot-isolated reads: answered from a frozen CSR snapshot,
        # stamped with the version (WAL sequence) they reflect.
        status, detect = call(port, "GET", "/v1/detect")
        print(f"detect          -> {status} community={detect['community']} "
              f"density={detect['density']:.2f} @v{detect['version']}")
        status, communities = call(port, "GET", "/v1/communities?limit=3")
        print(f"communities     -> {status} {communities['count']} instance(s)")
        status, vertex = call(port, "GET", "/v1/vertices/shady-shop")
        print(f"vertex lookup   -> {status} {vertex}")
        status, health = call(port, "GET", "/healthz")
        print(f"healthz         -> {status} |V|={health['vertices']} |E|={health['edges']}")
        status, metrics = call(port, "GET", "/metrics")
        accepted = next(line for line in metrics.splitlines()
                        if line.startswith("repro_ingest_events_accepted_total"))
        print(f"metrics         -> {status} {accepted}")

    asyncio.run(run(config, first_session))

    # "Crash" and recover: a new app over the same wal_dir replays the
    # checkpoint + WAL suffix and serves the identical state.
    def recovered_session(port: int, recovered: int) -> None:
        status, detect = call(port, "GET", "/v1/detect")
        print(f"\nafter restart on :{port} ({recovered} WAL ops replayed)")
        print(f"recovered detect-> {status} community={detect['community']} "
              f"density={detect['density']:.2f} @v{detect['version']}")
        assert "shady-shop" in detect["community"]

    asyncio.run(run(config, recovered_session))


if __name__ == "__main__":
    main()
