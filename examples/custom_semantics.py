"""Plugging custom fraud semantics into Spade (the Listing 2 workflow).

Run with::

    python examples/custom_semantics.py

The paper's headline programmability claim is that a developer writes only
the two suspiciousness functions (``vsusp`` and ``esusp``) and Spade turns
the resulting peeling algorithm into an incremental one automatically.  This
example implements a "promo-abuse" semantics: transactions paid with a
promotion code are more suspicious, and accounts created recently carry a
prior.  It then compares what the built-in DG / DW / FD semantics and the
custom one detect on the same data — all through the v1
:class:`repro.api.SpadeClient` façade, where a custom semantics instance
simply overrides the config's named built-in.
"""

from __future__ import annotations

import math

from repro.api import EngineConfig, Insert, SpadeClient
from repro.peeling.semantics import custom_semantics

# Accounts created in the last few days (side information a real system
# would pull from its user database).
RECENTLY_CREATED = {"mule-1", "mule-2", "mule-3", "mule-4"}

# Transactions: (customer, merchant, amount).  Promo-funded transactions are
# recorded separately by pair (a real system would carry this as metadata).
TRANSACTIONS = [
    ("alice", "grocer", 20.0),
    ("bob", "grocer", 15.0),
    ("alice", "cinema", 12.0),
    ("carol", "cinema", 9.0),
    ("dave", "grocer", 22.0),
    # The promo-abuse ring: new accounts, small promo-funded orders, all at
    # the same two merchants.
    ("mule-1", "kickback-shop", 5.0),
    ("mule-2", "kickback-shop", 5.0),
    ("mule-3", "kickback-shop", 5.0),
    ("mule-4", "kickback-shop", 5.0),
    ("mule-1", "kickback-cafe", 5.0),
    ("mule-2", "kickback-cafe", 5.0),
    ("mule-3", "kickback-cafe", 5.0),
    ("mule-4", "kickback-cafe", 5.0),
]

# Pairs known to have used a promotion code.
PROMO_FUNDED_MERCHANTS = {"kickback-shop", "kickback-cafe"}


def promo_abuse_semantics():
    """Suspiciousness tuned for promotion abuse."""

    def vsusp(vertex, _graph):
        # New accounts are suspicious before they transact at all.
        return 1.5 if vertex in RECENTLY_CREATED else 0.0

    def esusp(_src, dst, raw_amount, graph):
        promo_funded = dst in PROMO_FUNDED_MERCHANTS
        base = 2.5 if promo_funded else 0.2
        # Like Fraudar, discount edges into very popular merchants.
        degree = graph.degree(dst) if graph.has_vertex(dst) else 0
        return base + raw_amount / (10.0 * math.log(degree + 5.0))

    return custom_semantics("PromoAbuse", vertex_susp=vsusp, edge_susp=esusp, recompute_on_insert=True)


def detect_with(name=None, semantics=None):
    """Detect on the shared transactions under a built-in or custom semantics."""
    config = EngineConfig(semantics=name) if name else EngineConfig()
    client = SpadeClient(config, semantics=semantics)
    report = client.load(TRANSACTIONS)
    return client, sorted(report.vertices), report.density


def main() -> None:
    print(f"{'semantics':<12} {'density':>8}  community")
    print("-" * 70)
    for name in ("DG", "DW", "FD"):
        _client, community, density = detect_with(name=name)
        print(f"{name:<12} {density:8.3f}  {community}")
    _client, community, density = detect_with(semantics=promo_abuse_semantics())
    print(f"{'PromoAbuse':<12} {density:8.3f}  {community}")

    # The custom semantics keeps working incrementally, like any built-in:
    client, _, _ = detect_with(semantics=promo_abuse_semantics())
    report = client.apply([Insert("mule-5", "kickback-shop", 5.0)])
    print("\nafter one more promo-funded order from a brand-new account:")
    print("  community:", sorted(report.vertices))
    assert "mule-5" in report.vertices or "kickback-shop" in report.vertices


if __name__ == "__main__":
    main()
