"""Streaming fraud detection on a Grab-like workload with injected fraud.

Run with::

    python examples/streaming_fraud_detection.py

The example generates a synthetic transaction stream containing the three
fraud patterns of the paper's case studies, then replays it under three
processing policies — per-edge incremental maintenance, 500-edge batches and
edge grouping — and reports, for each policy, the per-edge compute cost, the
response latency of fraudulent activity and the prevention ratio (which
fraction of each fraud ring's transactions arrived after the ring was
detected and could therefore be blocked).

Engines are constructed and loaded through the v1 public API
(:class:`repro.api.EngineConfig` / :class:`repro.api.SpadeClient`); the
replay driver measures exactly what the façade's ``apply`` / ``detect``
deliver.
"""

from __future__ import annotations

from repro.api import EngineConfig, SpadeClient
from repro.streaming import BatchPolicy, EdgeGroupingPolicy, PerEdgePolicy, replay_stream
from repro.workloads.grab import GrabConfig, generate_grab_dataset


def main() -> None:
    # A small but realistic workload: heavy-tailed customer/merchant
    # popularity, one instance of each fraud pattern in the increment stream.
    config = GrabConfig(
        name="streaming-example",
        num_customers=1500,
        num_merchants=200,
        num_edges=6000,
        fraud_instances_per_pattern=1,
        seed=42,
    )
    dataset = generate_grab_dataset(config)
    truth = dataset.fraud_community_map()
    print(
        f"dataset: {len(dataset.initial_edges)} historical transactions, "
        f"{len(dataset.increments)} streamed transactions, "
        f"{len(dataset.fraud_communities)} injected fraud rings\n"
    )

    policies = [
        PerEdgePolicy(label="IncFD (per edge)"),
        BatchPolicy(500, label="IncFD-500 (batches)"),
        EdgeGroupingPolicy(label="IncFDG (edge grouping)"),
    ]
    engine_config = EngineConfig(semantics="FD")

    print(f"{'policy':<24} {'E (us/edge)':>12} {'mean latency':>13} {'prevention':>11} {'flushes':>8}")
    print("-" * 75)
    for policy in policies:
        client = SpadeClient(engine_config)
        client.load(dataset.initial_graph(client.semantics))
        report = replay_stream(
            client,
            dataset.increments,
            policy,
            fraud_communities=truth,
            ban_detected=True,
        )
        metrics = report.metrics
        print(
            f"{policy.name:<24} {metrics.mean_elapsed_per_edge * 1e6:12.1f} "
            f"{metrics.mean_latency:12.3f}s {metrics.prevention_ratio:10.1%} {metrics.flushes:8d}"
        )
        for label in sorted(report.detection_times):
            delay = report.detection_times[label] - next(
                c.start_time for c in dataset.fraud_communities if c.label == label
            )
            print(f"    detected {label:<16} {delay:8.2f}s after the burst started")
    print(
        "\nEdge grouping responds to urgent edges immediately, so fraud rings are"
        "\ncaught early in their burst; large fixed batches trade that latency for"
        "\nper-edge throughput, exactly the trade-off of Figure 9(a) in the paper."
    )


if __name__ == "__main__":
    main()
