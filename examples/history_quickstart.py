"""History quickstart: time-travel reads and the SQLite cold store.

Run with::

    python examples/history_quickstart.py

The example boots a durable :class:`repro.serve.ServeApp` with the
history sidecar enabled, streams a small fraud campaign into it in
stages, and then looks *backwards*:

* ``GET /v1/detect?asof=SEQ`` — the detection answer as it stood at any
  past WAL sequence, reconstructed bit-identically from the nearest
  checkpoint plus a WAL-suffix replay (and LRU-cached for the next ask);
* ``GET /v1/history/...`` — window-function analytics over the SQLite
  cold store the background indexer maintains: the epoch catalogue, a
  community's density timeline, and "when did this account first enter
  a dense community?";
* the standalone indexer (``python -m repro.history``) re-indexing the
  same WAL idempotently — the epoch count does not change.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.api import EngineConfig
from repro.history import HistoryConfig
from repro.serve import ServeConfig
from repro.serve.app import ServeApp


def call(port: int, method: str, path: str, payload=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = response.read().decode()
        return response.status, (json.loads(data) if data.startswith(("{", "[")) else data)
    finally:
        connection.close()


async def run(config: EngineConfig) -> None:
    app = ServeApp(config)
    await app.start()
    try:
        loop = asyncio.get_running_loop()
        port = app.server.port
        do = lambda *args: loop.run_in_executor(None, call, port, *args)
        print(f"server on :{port} (history db: {app.history_db})")

        # Stage 1: normal-looking traffic, one edge per WAL sequence.
        normal = [["alice", "book-shop", 2.0], ["bob", "cafe", 1.0],
                  ["carol", "book-shop", 1.5], ["dave", "bakery", 1.0]]
        for src, dst, weight in normal:
            await do("POST", "/v1/edges", {"src": src, "dst": dst, "weight": weight})

        _, quiet = await do("GET", "/v1/detect")
        quiet_version = quiet["version"]
        print(f"quiet period    -> density {quiet['density']:.2f} @v{quiet_version}")

        # Stage 2: a burst — mule accounts condensing on one cash-out shop.
        burst = [[f"mule-{i}", "shady-shop", 30.0 + i] for i in range(6)]
        burst += [["mule-0", "mule-1", 9.0], ["mule-2", "mule-3", 9.0]]
        for src, dst, weight in burst:
            await do("POST", "/v1/edges", {"src": src, "dst": dst, "weight": weight})

        _, now = await do("GET", "/v1/detect")
        print(f"after burst     -> density {now['density']:.2f} "
              f"community={now['community']} @v{now['version']}")

        # Time travel: the same question, answered as of the quiet period.
        # The reconstruction replays the WAL prefix <= asof through the
        # recovery path, so the answer is the one a detect at that moment
        # would have returned — bit for bit.
        _, then = await do("GET", f"/v1/detect?asof={quiet_version}")
        print(f"asof v{quiet_version}        -> density {then['density']:.2f} "
              f"community={then['community']} (asof={then['asof']})")
        assert "shady-shop" not in then["community"]

        # Asking again hits the LRU snapshot cache (see /healthz).
        await do("GET", f"/v1/detect?asof={quiet_version}")
        _, health = await do("GET", "/healthz")
        print(f"asof cache      -> {health['asof_cache']}")

        # Let the background indexer catch up: every epoch boundary at or
        # below the current head must be in the cold store before we query.
        interval = config.serve.history.epoch_interval
        target = now["version"] - now["version"] % interval
        for _ in range(200):
            _, health = await do("GET", "/healthz")
            if health["history"]["last_indexed_seq"] >= target:
                break
            await asyncio.sleep(0.05)
        print(f"indexer         -> {health['history']}")

        _, epochs = await do("GET", "/v1/history/epochs")
        print(f"epoch catalogue -> {[e['seq'] for e in epochs['epochs']]}")
        _, timeline = await do("GET", "/v1/history/communities?rank=0&limit=5")
        for row in timeline["timeline"]:
            print(f"  epoch {row['epoch_seq']:>3}: density {row['density']:.2f} "
                  f"(delta {row['density_delta']}) size {row['size']}")
        _, first = await do("GET", "/v1/history/vertices/mule-0")
        entry = first["first_entry"]
        if entry is not None:
            print(f"mule-0          -> first entered a dense community at "
                  f"epoch {entry['first_seq']} (density {entry['density']:.2f})")
    finally:
        await app.stop()


def main() -> None:
    wal_dir = tempfile.mkdtemp(prefix="repro-history-quickstart-")
    config = EngineConfig(
        semantics="DW",
        backend="array",
        serve=ServeConfig(
            port=0,
            wal_dir=wal_dir,
            max_delay_ms=2.0,
            checkpoint_interval=5,
            # The sidecar: epoch every 2 WAL sequences, fast polling so the
            # demo does not wait.  ``python -m repro.serve --history-db auto``
            # enables the same thing from the command line.
            history=HistoryConfig(epoch_interval=2, poll_ms=25.0),
        ),
    )
    asyncio.run(run(config))

    # The standalone indexer tails the same WAL; re-running it against the
    # already-indexed store is a no-op (idempotent, checksum-verified).
    db = Path(wal_dir) / "history.sqlite"
    config_path = Path(wal_dir) / "engine.json"
    config_path.write_text(json.dumps(config.to_dict()), encoding="utf-8")
    out = subprocess.run(
        [sys.executable, "-m", "repro.history",
         "--wal-dir", wal_dir, "--config", str(config_path)],
        capture_output=True, text=True, check=True,
    )
    print(f"\nstandalone re-index: {out.stdout.strip().splitlines()[-1]}")
    out = subprocess.run(
        [sys.executable, "-m", "repro.history",
         "--wal-dir", wal_dir, "--config", str(config_path), "--verify"],
        capture_output=True, text=True, check=True,
    )
    print(f"verify: {out.stdout.strip().splitlines()[-1]} ({db.name} intact)")


if __name__ == "__main__":
    main()
