"""The full Grab-style pipeline: logs → graph → detection → moderation.

Run with::

    python examples/grab_pipeline.py

This example reproduces Figure 1 of the paper end to end and contrasts the
two detectors: the pre-Spade *periodic static* detector (re-peels the whole
graph every period) and the *real-time Spade* detector (incremental
maintenance per transaction).  Both feed the same moderator, which bans the
members of detected communities and blocks their subsequent transactions;
the report shows how much more fraud the real-time detector prevents.

The real-time detectors are described by :class:`repro.api.EngineConfig`
objects — the same validated config that drives :class:`repro.api.SpadeClient`
everywhere else — so switching backend, sharding or edge grouping is a
one-knob change.
"""

from __future__ import annotations

from repro.api import EngineConfig
from repro.bench.tables import render_table
from repro.peeling.semantics import dw_semantics
from repro.pipeline import FraudDetectionPipeline, TransactionLog
from repro.workloads.grab import GrabConfig, generate_grab_dataset


def build_logs():
    """Generate a workload and split it into historical / live logs."""
    config = GrabConfig(
        name="pipeline-example",
        num_customers=1200,
        num_merchants=150,
        num_edges=5000,
        fraud_instances_per_pattern=1,
        seed=11,
    )
    dataset = generate_grab_dataset(config)
    from repro.pipeline.transaction_log import TransactionRecord

    records = [
        TransactionRecord(f"hist-{i}", src, dst, amount, float(i) * 1e-3)
        for i, (src, dst, amount) in enumerate(dataset.initial_edges)
    ]
    historical = TransactionLog(records)
    live = TransactionLog.from_stream(dataset.increments, id_prefix="live")
    return dataset, historical, live


def main() -> None:
    dataset, historical, live = build_logs()
    fraud_total = sum(1 for e in dataset.increments if e.is_fraud)
    print(
        f"historical log: {len(historical)} transactions; "
        f"live log: {len(live)} transactions ({fraud_total} labelled fraudulent)\n"
    )

    rows = []
    for detector, kwargs in (
        ("periodic", {"static_period": 30.0}),
        ("spade", {"config": EngineConfig(semantics="DW")}),
        ("spade", {"config": EngineConfig(semantics="DW", edge_grouping=True)}),
    ):
        pipeline = FraudDetectionPipeline(dw_semantics(), detector=detector, **kwargs)
        pipeline.initialise(historical)
        report = pipeline.run(live)
        rows.append(report.as_row())

    print(render_table(rows, title="Figure 1 pipeline: periodic static vs real-time Spade"))
    print(
        "\nThe real-time detectors ban the fraud ring while its burst is still in"
        "\nprogress, so the moderator blocks most of the remaining fictitious"
        "\ntransactions; the periodic detector only reacts at the next full pass."
    )


if __name__ == "__main__":
    main()
