"""Quickstart: detect a fraudulent community and keep it fresh as edges arrive.

Run with::

    python examples/quickstart.py

The example builds a small transaction graph, runs the initial (static)
detection, then streams a burst of suspicious transactions through Spade's
incremental ``insert_edge`` API and shows how the detected community and its
density evolve — without ever re-running the static algorithm.
"""

from __future__ import annotations

from repro import Spade, dw_semantics


def main() -> None:
    # 1. Pick a fraud semantics.  DW scores every transaction by its amount;
    #    see custom_semantics.py for plugging in your own vsusp/esusp.
    spade = Spade(dw_semantics())

    # 2. Load the historical transactions (customer, merchant, amount).
    history = [
        ("alice", "book-shop", 12.0),
        ("bob", "book-shop", 8.0),
        ("alice", "cafe", 4.0),
        ("carol", "cafe", 5.0),
        ("dave", "electronics", 30.0),
        ("erin", "electronics", 25.0),
        ("dave", "cafe", 3.0),
    ]
    initial = spade.load_edges(history)
    print("initial detection:", sorted(initial.community), f"density={initial.best_density:.2f}")

    # 3. A ring of colluding accounts starts trading with each other.
    burst = [
        ("mule-1", "shady-shop", 40.0),
        ("mule-2", "shady-shop", 45.0),
        ("mule-3", "shady-shop", 42.0),
        ("mule-1", "shady-shop", 38.0),
        ("mule-2", "shady-shop", 50.0),
        ("mule-3", "shady-shop", 47.0),
    ]

    # 4. Every insertion incrementally repairs the peeling sequence and
    #    returns the up-to-date community — this is the real-time loop.
    for src, dst, amount in burst:
        community = spade.insert_edge(src, dst, amount)
        print(
            f"after {src} -> {dst} ({amount:5.1f}): "
            f"community={sorted(community.vertices)} density={community.density:.2f} "
            f"(affected area: {spade.last_stats.affected_area} steps)"
        )

    # 5. The colluding ring is now the densest community; a moderator would
    #    ban these accounts (see grab_pipeline.py for the full pipeline).
    final = spade.detect()
    assert "shady-shop" in final.vertices
    print("\nfinal fraudsters:", sorted(final.vertices))


if __name__ == "__main__":
    main()
