"""Quickstart: detect a fraudulent community and keep it fresh as edges arrive.

Run with::

    python examples/quickstart.py

The example builds a small transaction graph through the v1 public API
(:class:`repro.api.SpadeClient`), runs the initial (static) detection, then
streams a burst of suspicious transactions through the single ``apply``
ingestion method and shows how the detected community and its density
evolve — without ever re-running the static algorithm.
"""

from __future__ import annotations

from repro.api import EngineConfig, Insert, SpadeClient


def main() -> None:
    # 1. Describe the engine in one validated config.  DW scores every
    #    transaction by its amount; the config round-trips through JSON
    #    (EngineConfig.from_dict / to_dict), so the same knobs can come
    #    from a file or CLI flags.
    config = EngineConfig(semantics="DW")

    with SpadeClient(config) as client:
        # 2. Load the historical transactions (customer, merchant, amount).
        history = [
            ("alice", "book-shop", 12.0),
            ("bob", "book-shop", 8.0),
            ("alice", "cafe", 4.0),
            ("carol", "cafe", 5.0),
            ("dave", "electronics", 30.0),
            ("erin", "electronics", 25.0),
            ("dave", "cafe", 3.0),
        ]
        initial = client.load(history)
        print("initial detection:", sorted(initial.vertices), f"density={initial.density:.2f}")

        # 3. A ring of colluding accounts starts trading with each other.
        burst = [
            ("mule-1", "shady-shop", 40.0),
            ("mule-2", "shady-shop", 45.0),
            ("mule-3", "shady-shop", 42.0),
            ("mule-1", "shady-shop", 38.0),
            ("mule-2", "shady-shop", 50.0),
            ("mule-3", "shady-shop", 47.0),
        ]

        # 4. Every applied event incrementally repairs the peeling sequence;
        #    the structured report carries the up-to-date community plus the
        #    cost accounting — this is the real-time loop.
        for src, dst, amount in burst:
            report = client.apply([Insert(src, dst, amount)])
            print(
                f"after {src} -> {dst} ({amount:5.1f}): "
                f"community={sorted(report.vertices)} density={report.density:.2f} "
                f"(affected area: {report.affected_area} steps)"
            )

        # 5. The colluding ring is now the densest community; a moderator
        #    would ban these accounts (see grab_pipeline.py for the full
        #    pipeline).
        final = client.detect()
        assert "shady-shop" in final.vertices
        print("\nfinal fraudsters:", sorted(final.vertices))


if __name__ == "__main__":
    main()
