"""Figure 11 benchmark: elapsed time / latency across the batch-size sweep."""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_engine
from repro.peeling.semantics import dw_semantics
from repro.streaming.policies import BatchPolicy, PerEdgePolicy
from repro.streaming.replay import replay_stream


@pytest.mark.parametrize("batch_size", [1, 10, 100, 400])
def test_batch_sweep_replay(benchmark, grab_small, batch_size):
    """Replay a fixed stream slice under each swept batch size."""
    stream = grab_small.increments[:400]
    policy_cls = (lambda: PerEdgePolicy()) if batch_size == 1 else (lambda: BatchPolicy(batch_size))

    def run():
        spade = fresh_engine(grab_small, dw_semantics())
        return replay_stream(spade, stream, policy_cls(), fraud_communities=grab_small.fraud_community_map())

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.metrics.edges == len(stream)


def test_fig11_shape_latency_grows_with_batch_size(grab_small):
    """The figure's two trends: E falls and L rises as batches grow."""
    stream = grab_small.increments[:600]
    truth = grab_small.fraud_community_map()

    def run(policy):
        spade = fresh_engine(grab_small, dw_semantics())
        return replay_stream(spade, stream, policy, fraud_communities=truth).metrics

    small_batch = run(BatchPolicy(10))
    large_batch = run(BatchPolicy(300))
    assert large_batch.mean_latency > small_batch.mean_latency
    assert large_batch.mean_elapsed_per_edge < small_batch.mean_elapsed_per_edge * 1.5
