"""Figure 9(b) benchmark: degree-distribution computation on the Grab graph."""

from __future__ import annotations

from repro.graph.stats import compute_stats, degree_distribution


def test_degree_distribution_benchmark(benchmark, grab_small_graph_dw):
    """Time the degree histogram used for Figure 9(b)."""
    distribution = benchmark(lambda: degree_distribution(grab_small_graph_dw))
    assert sum(distribution.frequencies) == grab_small_graph_dw.num_vertices()
    # Heavy-tailed, like the paper's Grab graph.
    assert distribution.power_law_exponent() < -0.5


def test_graph_stats_benchmark(benchmark, grab_small_graph_dw):
    """Time the Table 3 statistics computation on the materialised graph."""
    stats = benchmark(lambda: compute_stats(grab_small_graph_dw))
    assert stats.max_degree > stats.avg_degree
