"""Table 5 benchmark: static baseline vs 1K batches vs edge grouping."""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_engine
from repro.peeling.semantics import dw_semantics
from repro.streaming.policies import BatchPolicy, EdgeGroupingPolicy, PeriodicStaticPolicy
from repro.streaming.replay import replay_stream


def _stream(dataset, limit=600):
    return dataset.increments[: min(limit, len(dataset.increments))]


@pytest.mark.parametrize(
    "policy_factory",
    [
        pytest.param(lambda: PeriodicStaticPolicy(5.0, label="DW-static"), id="static"),
        pytest.param(lambda: BatchPolicy(200, label="IncDW-200"), id="inc-batch"),
        pytest.param(lambda: EdgeGroupingPolicy(label="IncDWG"), id="inc-grouping"),
    ],
)
def test_policy_elapsed_time(benchmark, grab_small, policy_factory):
    """Replay the same stream under each Table 5 policy."""
    stream = _stream(grab_small)
    truth = grab_small.fraud_community_map()

    def run():
        spade = fresh_engine(grab_small, dw_semantics())
        return replay_stream(spade, stream, policy_factory(), fraud_communities=truth)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.metrics.edges == len(stream)


def test_grouping_latency_beats_fixed_batches(grab_small):
    """The Table 5 shape: edge grouping responds far sooner than big batches."""
    stream = _stream(grab_small, limit=1200)
    truth = grab_small.fraud_community_map()

    def latency(policy):
        spade = fresh_engine(grab_small, dw_semantics())
        report = replay_stream(spade, stream, policy, fraud_communities=truth)
        return report.metrics.mean_latency

    assert latency(EdgeGroupingPolicy()) < latency(BatchPolicy(1000))
