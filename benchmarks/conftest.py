"""Shared fixtures for the pytest-benchmark targets.

Each benchmark file regenerates one table or figure of the paper at a
reduced, CI-friendly scale (the ``*-small`` datasets).  The full-scale
numbers recorded in ``EXPERIMENTS.md`` come from
``python -m repro.bench.run_all``; these targets exist so that
``pytest benchmarks/ --benchmark-only`` exercises exactly the same code
paths quickly and catches performance regressions.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import load_dataset
from repro.core.spade import Spade
from repro.peeling.semantics import dw_semantics, fraudar_semantics


@pytest.fixture(scope="session")
def grab_small():
    """The small Grab-like dataset (with injected fraud)."""
    return load_dataset("grab1-small", seed=0)


@pytest.fixture(scope="session")
def amazon_small():
    """The small Amazon-style dataset."""
    return load_dataset("amazon-small", seed=0)


@pytest.fixture(scope="session")
def grab_small_graph_dw(grab_small):
    """The weighted initial graph of the small Grab dataset under DW."""
    return grab_small.initial_graph(dw_semantics())


def fresh_engine(dataset, semantics=None, **kwargs) -> Spade:
    """Build a fresh Spade engine loaded with the dataset's initial graph."""
    semantics = semantics or dw_semantics()
    spade = Spade(semantics, **kwargs)
    spade.load_graph(dataset.initial_graph(semantics))
    return spade
