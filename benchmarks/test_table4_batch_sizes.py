"""Table 4 benchmark: per-edge maintenance cost as the batch size grows."""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_engine
from repro.core.batch import insert_batch
from repro.peeling.semantics import dw_semantics


@pytest.mark.parametrize("batch_size", [1, 10, 100, 500])
def test_batch_insertion_cost(benchmark, grab_small, batch_size):
    """Insert the same 500 increments in batches of the given size."""
    increments = [
        (e.src, e.dst, e.weight) for e in list(grab_small.increments)[:500]
    ]

    def run():
        spade = fresh_engine(grab_small, dw_semantics())
        for start in range(0, len(increments), batch_size):
            insert_batch(spade.state, increments[start : start + batch_size])
        return spade

    spade = benchmark.pedantic(run, rounds=1, iterations=1)
    spade.state.check_consistency()
    assert spade.graph.num_edges() > 0


def test_batching_amortises_work(grab_small):
    """Larger batches touch a smaller total affected area (Example 4.2)."""
    increments = [(e.src, e.dst, e.weight) for e in list(grab_small.increments)[:400]]

    def total_affected(batch_size):
        spade = fresh_engine(grab_small, dw_semantics())
        area = 0
        for start in range(0, len(increments), batch_size):
            area += insert_batch(spade.state, increments[start : start + batch_size]).affected_area
        return area

    assert total_affected(200) < total_affected(1)
