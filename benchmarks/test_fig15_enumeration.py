"""Figure 15 benchmark: fraud-instance enumeration over timespans."""

from __future__ import annotations

from repro.analysis.enumeration import enumerate_over_time
from repro.peeling.semantics import dw_semantics


def test_enumeration_timeline_benchmark(benchmark, grab_small):
    """Time the per-timespan enumeration of newly identified fraud instances."""
    timeline = benchmark.pedantic(
        lambda: enumerate_over_time(grab_small, dw_semantics(), num_spans=8, max_instances=4),
        rounds=1,
        iterations=1,
    )
    assert len(timeline.spans) == 8
    assert sum(span.total_labelled() for span in timeline.spans) >= 1


def test_enumeration_counts_each_instance_once(grab_small):
    """An instance appears in exactly one timespan ("newly identified")."""
    timeline = enumerate_over_time(grab_small, dw_semantics(), num_spans=6, max_instances=4)
    counted = sum(span.total_labelled() for span in timeline.spans)
    assert counted <= len(grab_small.fraud_communities)
