"""Figures 12/13 benchmark: the fraud-pattern case studies."""

from __future__ import annotations

from repro.analysis.casestudy import run_case_study
from repro.peeling.semantics import dw_semantics
from repro.workloads.fraud import PATTERN_COLLUSION


def test_collusion_case_study_benchmark(benchmark, grab_small):
    """Time the collusion case study (incremental vs periodic static)."""
    label = next(
        c.label for c in grab_small.fraud_communities if c.pattern == PATTERN_COLLUSION
    )
    study = benchmark.pedantic(
        lambda: run_case_study(grab_small, label, dw_semantics(), static_period=20.0),
        rounds=1,
        iterations=1,
    )
    assert study.incremental_detection is not None
    # Spade reacts during the burst; the periodic baseline reacts a full
    # period later (or not at all within the replayed window).
    if study.static_detection is not None:
        assert study.incremental_detection <= study.static_detection


def test_all_patterns_have_ground_truth(grab_small):
    """The injected dataset carries all three paper patterns."""
    patterns = {c.pattern for c in grab_small.fraud_communities}
    assert patterns == {
        "customer-merchant-collusion",
        "deal-hunter",
        "click-farming",
    }
