"""Figure 10 benchmark: static re-peel vs single-edge incremental maintenance."""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_engine
from repro.peeling.semantics import dg_semantics, dw_semantics, fraudar_semantics
from repro.peeling.static import peel

SEMANTICS = {"DG": dg_semantics, "DW": dw_semantics, "FD": fraudar_semantics}


@pytest.mark.parametrize("algo", ["DG", "DW", "FD"])
def test_static_peel(benchmark, grab_small, algo):
    """The baseline: one from-scratch peeling run (what Grab ran periodically)."""
    semantics = SEMANTICS[algo]()
    graph = grab_small.initial_graph(semantics)
    result = benchmark(lambda: peel(graph, algo))
    assert result.community


@pytest.mark.parametrize("algo", ["DG", "DW", "FD"])
def test_incremental_single_edge(benchmark, grab_small, algo):
    """IncDG / IncDW / IncFD: per-edge maintenance plus detection."""
    semantics = SEMANTICS[algo]()
    spade = fresh_engine(grab_small, semantics)
    increments = list(grab_small.increments)[:2000]
    cursor = {"i": 0}

    def insert_one():
        edge = increments[cursor["i"] % len(increments)]
        cursor["i"] += 1
        return spade.insert_edge(edge.src, edge.dst, edge.weight)

    community = benchmark(insert_one)
    assert community.density > 0


def test_speedup_single_edge_vs_static(grab_small):
    """The headline claim of Figure 10: incremental is orders of magnitude faster."""
    import time

    semantics = dw_semantics()
    graph = grab_small.initial_graph(semantics)
    began = time.perf_counter()
    peel(graph, "DW")
    static_seconds = time.perf_counter() - began

    spade = fresh_engine(grab_small, semantics)
    edges = list(grab_small.increments)[:300]
    began = time.perf_counter()
    for edge in edges:
        spade.insert_edge(edge.src, edge.dst, edge.weight)
    per_edge = (time.perf_counter() - began) / len(edges)

    assert static_seconds / per_edge > 5.0
