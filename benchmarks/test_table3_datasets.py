"""Table 3 benchmark: dataset generation and statistics."""

from __future__ import annotations

from repro.bench.experiments import table3
from repro.bench.harness import ExperimentConfig
from repro.peeling.semantics import dw_semantics
from repro.workloads.datasets import generate_dataset


def test_table3_rows_benchmark(benchmark):
    """Time the Table 3 statistics computation on the small datasets."""
    config = ExperimentConfig.quick_config(datasets=["grab1-small", "amazon-small", "wiki-vote-small"])
    result = benchmark.pedantic(table3.run, args=(config,), rounds=1, iterations=1)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["|E|"] > 0
        assert row["avg. degree"] > 0


def test_dataset_generation_benchmark(benchmark):
    """Time generating the small Grab dataset from scratch (no memoisation)."""
    dataset = benchmark.pedantic(
        lambda: generate_dataset("grab2-small", seed=1), rounds=1, iterations=1
    )
    stats = dataset.stats_row(dw_semantics())
    assert stats["|V|"] >= 2000
    assert stats["increments"] == len(dataset.increments)
