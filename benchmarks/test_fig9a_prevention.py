"""Figure 9(a) benchmark: prevention ratio vs latency for grouping vs batches."""

from __future__ import annotations

from benchmarks.conftest import fresh_engine
from repro.peeling.semantics import dw_semantics
from repro.streaming.policies import BatchPolicy, EdgeGroupingPolicy
from repro.streaming.replay import replay_stream


def _run(dataset, policy):
    spade = fresh_engine(dataset, dw_semantics())
    return replay_stream(
        spade,
        dataset.increments,
        policy,
        fraud_communities=dataset.fraud_community_map(),
        ban_detected=True,
    )


def test_grouping_prevention_benchmark(benchmark, grab_small):
    """Time the full grouping replay and check it prevents injected fraud."""
    report = benchmark.pedantic(lambda: _run(grab_small, EdgeGroupingPolicy()), rounds=1, iterations=1)
    assert report.metrics.prevention_ratio > 0.2
    assert report.detection_times


def test_prevention_ratio_shape(grab_small):
    """The figure's shape: grouping prevents more than a large fixed batch."""
    grouping = _run(grab_small, EdgeGroupingPolicy())
    batched = _run(grab_small, BatchPolicy(1000))
    assert grouping.metrics.prevention_ratio >= batched.metrics.prevention_ratio
    assert grouping.metrics.mean_latency <= batched.metrics.mean_latency
