"""Unit tests for the dynamic graph substrate."""

from __future__ import annotations

import pytest

from repro.errors import InvalidWeightError, UnknownEdgeError, UnknownVertexError
from repro.graph.graph import DynamicGraph


class TestVertices:
    def test_add_vertex_default_weight(self):
        graph = DynamicGraph()
        graph.add_vertex("a")
        assert graph.has_vertex("a")
        assert graph.vertex_weight("a") == 0.0

    def test_add_vertex_with_weight(self):
        graph = DynamicGraph()
        graph.add_vertex("a", 2.5)
        assert graph.vertex_weight("a") == 2.5

    def test_re_add_vertex_keeps_larger_weight(self):
        graph = DynamicGraph()
        graph.add_vertex("a", 2.0)
        graph.add_vertex("a", 1.0)
        assert graph.vertex_weight("a") == 2.0
        graph.add_vertex("a", 3.0)
        assert graph.vertex_weight("a") == 3.0

    def test_negative_vertex_weight_rejected(self):
        graph = DynamicGraph()
        with pytest.raises(InvalidWeightError):
            graph.add_vertex("a", -1.0)

    def test_set_vertex_weight(self):
        graph = DynamicGraph()
        graph.add_vertex("a", 1.0)
        graph.set_vertex_weight("a", 0.5)
        assert graph.vertex_weight("a") == 0.5

    def test_set_vertex_weight_unknown(self):
        graph = DynamicGraph()
        with pytest.raises(UnknownVertexError):
            graph.set_vertex_weight("missing", 1.0)

    def test_vertex_weight_unknown(self):
        graph = DynamicGraph()
        with pytest.raises(UnknownVertexError):
            graph.vertex_weight("missing")

    def test_num_vertices_and_len(self):
        graph = DynamicGraph(vertices=["a", "b", ("c", 1.5)])
        assert graph.num_vertices() == 3
        assert len(graph) == 3
        assert graph.vertex_weight("c") == 1.5

    def test_contains(self):
        graph = DynamicGraph(vertices=["a"])
        assert "a" in graph
        assert "b" not in graph


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        graph = DynamicGraph()
        graph.add_edge("a", "b", 2.0)
        assert graph.has_vertex("a") and graph.has_vertex("b")
        assert graph.edge_weight("a", "b") == 2.0
        assert graph.num_edges() == 1

    def test_add_edge_accumulates_weight(self):
        graph = DynamicGraph()
        graph.add_edge("a", "b", 2.0)
        total = graph.add_edge("a", "b", 3.0)
        assert total == 5.0
        assert graph.num_edges() == 1
        assert graph.total_edge_weight() == 5.0

    def test_edge_direction_matters(self):
        graph = DynamicGraph()
        graph.add_edge("a", "b", 1.0)
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")
        graph.add_edge("b", "a", 2.0)
        assert graph.num_edges() == 2

    def test_zero_or_negative_edge_weight_rejected(self):
        graph = DynamicGraph()
        with pytest.raises(InvalidWeightError):
            graph.add_edge("a", "b", 0.0)
        with pytest.raises(InvalidWeightError):
            graph.add_edge("a", "b", -1.0)

    def test_self_loop_rejected(self):
        graph = DynamicGraph()
        with pytest.raises(InvalidWeightError):
            graph.add_edge("a", "a", 1.0)

    def test_remove_edge(self):
        graph = DynamicGraph()
        graph.add_edge("a", "b", 2.0)
        weight = graph.remove_edge("a", "b")
        assert weight == 2.0
        assert not graph.has_edge("a", "b")
        assert graph.num_edges() == 0
        assert graph.total_edge_weight() == 0.0

    def test_remove_missing_edge_raises(self):
        graph = DynamicGraph()
        graph.add_edge("a", "b", 1.0)
        with pytest.raises(UnknownEdgeError) as excinfo:
            graph.remove_edge("b", "a")
        assert excinfo.value.src == "b"
        assert excinfo.value.dst == "a"

    def test_edges_iteration(self):
        graph = DynamicGraph()
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("b", "c", 2.0)
        listed = sorted(graph.edges())
        assert listed == [("a", "b", 1.0), ("b", "c", 2.0)]

    def test_edge_weight_unknown(self):
        graph = DynamicGraph()
        with pytest.raises(UnknownEdgeError) as excinfo:
            graph.edge_weight("x", "y")
        assert excinfo.value.src == "x"
        assert excinfo.value.dst == "y"

    def test_from_edges_constructor(self):
        graph = DynamicGraph.from_edges([("a", "b"), ("b", "c", 2.5)])
        assert graph.num_edges() == 2
        assert graph.edge_weight("a", "b") == 1.0
        assert graph.edge_weight("b", "c") == 2.5


class TestNeighbourhoods:
    @pytest.fixture
    def star(self) -> DynamicGraph:
        graph = DynamicGraph()
        graph.add_edge("c1", "hub", 1.0)
        graph.add_edge("c2", "hub", 2.0)
        graph.add_edge("hub", "out", 4.0)
        return graph

    def test_degrees(self, star):
        assert star.in_degree("hub") == 2
        assert star.out_degree("hub") == 1
        assert star.degree("hub") == 3
        assert star.degree("c1") == 1

    def test_neighbors_undirected_union(self, star):
        assert set(star.neighbors("hub")) == {"c1", "c2", "out"}
        assert set(star.neighbors("c1")) == {"hub"}

    def test_incident_items_counts_both_directions(self, star):
        items = list(star.incident_items("hub"))
        assert sorted(w for _v, w in items) == [1.0, 2.0, 4.0]

    def test_incident_weight(self, star):
        assert star.incident_weight("hub") == 7.0
        assert star.incident_weight("out") == 4.0

    def test_in_out_neighbors(self, star):
        assert dict(star.in_neighbors("hub")) == {"c1": 1.0, "c2": 2.0}
        assert dict(star.out_neighbors("hub")) == {"out": 4.0}

    def test_unknown_vertex_raises(self, star):
        with pytest.raises(UnknownVertexError):
            star.out_neighbors("nope")
        with pytest.raises(UnknownVertexError):
            star.degree("nope")


class TestWholeGraph:
    def test_total_suspiciousness_combines_vertices_and_edges(self):
        graph = DynamicGraph()
        graph.add_vertex("a", 1.0)
        graph.add_vertex("b", 0.5)
        graph.add_edge("a", "b", 2.0)
        assert graph.total_suspiciousness() == pytest.approx(3.5)

    def test_copy_is_independent(self):
        graph = DynamicGraph()
        graph.add_edge("a", "b", 1.0)
        clone = graph.copy()
        clone.add_edge("b", "c", 1.0)
        clone.set_vertex_weight("a", 3.0)
        assert graph.num_edges() == 1
        assert graph.vertex_weight("a") == 0.0
        assert clone.num_edges() == 2

    def test_equality(self):
        g1 = DynamicGraph.from_edges([("a", "b", 1.0)])
        g2 = DynamicGraph.from_edges([("a", "b", 1.0)])
        g3 = DynamicGraph.from_edges([("a", "b", 2.0)])
        assert g1 == g2
        assert g1 != g3

    def test_graph_is_unhashable(self):
        with pytest.raises(TypeError):
            hash(DynamicGraph())

    def test_counts_after_mixed_operations(self):
        graph = DynamicGraph()
        for i in range(10):
            graph.add_edge(f"u{i}", f"u{(i + 1) % 10}", 1.0 + i)
        assert graph.num_vertices() == 10
        assert graph.num_edges() == 10
        graph.remove_edge("u0", "u1")
        assert graph.num_edges() == 9
        assert graph.total_edge_weight() == pytest.approx(sum(1.0 + i for i in range(10)) - 1.0)
