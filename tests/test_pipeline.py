"""Tests for the Grab pipeline simulation (Figure 1)."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.peeling.semantics import dw_semantics
from repro.pipeline.builder import GraphBuilder
from repro.pipeline.detector import PeriodicStaticDetector, RealTimeSpadeDetector
from repro.pipeline.moderator import Moderator
from repro.pipeline.pipeline import FraudDetectionPipeline
from repro.pipeline.transaction_log import TransactionLog, TransactionRecord
from repro.streaming.stream import TimestampedEdge, UpdateStream


def make_log(records) -> TransactionLog:
    return TransactionLog(
        TransactionRecord(f"tx{i}", c, m, amount, float(ts), fraud_label=label)
        for i, (c, m, amount, ts, label) in enumerate(records)
    )


@pytest.fixture
def initial_log():
    rows = []
    ts = 0
    for i in range(30):
        rows.append((f"user{i % 10}", f"shop{i % 4}", 2.0, ts, None))
        ts += 1
    return make_log(rows)


@pytest.fixture
def fraud_log():
    """A live log with a labelled dense burst among five colluding accounts."""
    rows = []
    ts = 100
    for i in range(20):
        rows.append((f"user{i % 10}", f"shop{i % 4}", 2.0, ts, None))
        ts += 1
    members = [f"fraud{i}" for i in range(5)]
    for _round in range(6):
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                rows.append((u, v, 8.0, ts, "ring"))
                ts += 0.05
    return make_log(rows)


class TestTransactionLog:
    def test_ordering_enforced(self):
        log = TransactionLog()
        log.append(TransactionRecord("a", "c", "m", 1.0, 5.0))
        with pytest.raises(StreamError):
            log.append(TransactionRecord("b", "c", "m", 1.0, 4.0))

    def test_window_and_len(self, initial_log):
        assert len(initial_log) == 30
        assert len(initial_log.window(0.0, 10.0)) == 10

    def test_stream_round_trip(self, initial_log):
        stream = initial_log.as_stream()
        assert isinstance(stream, UpdateStream)
        rebuilt = TransactionLog.from_stream(stream)
        assert len(rebuilt) == len(initial_log)

    def test_record_as_edge(self):
        record = TransactionRecord("t", "c", "m", 3.0, 1.0, fraud_label="x")
        edge = record.as_edge()
        assert isinstance(edge, TimestampedEdge)
        assert edge.weight == 3.0 and edge.fraud_label == "x"


class TestGraphBuilder:
    def test_build_uses_semantics(self, initial_log):
        builder = GraphBuilder(dw_semantics())
        graph = builder.build(initial_log)
        assert graph.num_vertices() == 14  # 10 users + 4 shops
        assert graph.total_edge_weight() == pytest.approx(60.0)

    def test_extend_adds_new_vertices_and_edges(self, initial_log):
        builder = GraphBuilder(dw_semantics())
        graph = builder.build(initial_log)
        count = builder.extend(graph, [TransactionRecord("t", "newbie", "shop0", 5.0, 99.0)])
        assert count == 1
        assert graph.has_vertex("newbie")


class TestDetectors:
    def test_periodic_detector_only_updates_at_period(self, initial_log, fraud_log):
        builder = GraphBuilder(dw_semantics())
        graph = builder.build(initial_log)
        detector = PeriodicStaticDetector(dw_semantics(), graph, period=1000.0)
        before = detector.current_fraudsters()
        for record in fraud_log:
            detector.observe(record)
        # Period never elapsed, so the community never changed.
        assert detector.current_fraudsters() == before
        assert detector.runs == 1

    def test_periodic_detector_detects_after_period(self, initial_log, fraud_log):
        builder = GraphBuilder(dw_semantics())
        graph = builder.build(initial_log)
        # A short period guarantees at least one re-detection run falls inside
        # the fraud burst (the burst spans roughly three stream seconds).
        detector = PeriodicStaticDetector(dw_semantics(), graph, period=1.0)
        for record in fraud_log:
            detector.observe(record)
        assert detector.runs > 1
        assert any(str(v).startswith("fraud") for v in detector.current_fraudsters())

    def test_realtime_detector_tracks_every_update(self, initial_log, fraud_log):
        builder = GraphBuilder(dw_semantics())
        graph = builder.build(initial_log)
        detector = RealTimeSpadeDetector(dw_semantics(), graph)
        for record in fraud_log:
            detector.observe(record)
        assert detector.updates == len(fraud_log)
        assert {f"fraud{i}" for i in range(5)} <= set(detector.current_fraudsters())
        assert detector.name == "IncDW"

    def test_realtime_detector_with_grouping_name(self, initial_log):
        builder = GraphBuilder(dw_semantics())
        graph = builder.build(initial_log)
        detector = RealTimeSpadeDetector(dw_semantics(), graph, edge_grouping=True)
        assert detector.name == "IncDWG"


class TestModerator:
    def test_review_bans_new_members_once(self):
        moderator = Moderator()
        assert moderator.review({"a", "b"}, timestamp=1.0) == 2
        assert moderator.review({"a", "b"}, timestamp=2.0) == 0
        assert moderator.banned_accounts == {"a", "b"}
        assert len(moderator.actions) == 1

    def test_screen_blocks_banned_accounts(self):
        moderator = Moderator()
        moderator.review({"fraudster"}, timestamp=0.0)
        blocked = TransactionRecord("t1", "fraudster", "shop", 10.0, 1.0)
        allowed = TransactionRecord("t2", "honest", "shop", 10.0, 1.0)
        assert not moderator.screen(blocked)
        assert moderator.screen(allowed)
        assert moderator.prevented_transactions() == 1
        assert moderator.prevented_amount() == 10.0

    def test_auto_ban_off(self):
        moderator = Moderator(auto_ban=False)
        assert moderator.review({"a"}, timestamp=0.0) == 0
        assert not moderator.banned_accounts

    def test_summary_and_ratio(self):
        moderator = Moderator()
        moderator.review({"x"}, 0.0)
        moderator.screen(TransactionRecord("t", "x", "m", 5.0, 1.0))
        assert moderator.prevention_ratio(2) == 0.5
        assert moderator.prevention_ratio(0) == 0.0
        assert moderator.summary()["banned accounts"] == 1


class TestPipeline:
    def test_spade_pipeline_prevents_fraud(self, initial_log, fraud_log):
        pipeline = FraudDetectionPipeline(dw_semantics(), detector="spade")
        pipeline.initialise(initial_log)
        report = pipeline.run(fraud_log)
        assert report.detector_name == "IncDW"
        assert report.fraud_transactions_total > 0
        assert report.fraud_prevention_ratio > 0.3
        assert report.blocked_transactions > 0

    def test_periodic_pipeline_prevents_less(self, initial_log, fraud_log):
        realtime = FraudDetectionPipeline(dw_semantics(), detector="spade")
        realtime.initialise(initial_log)
        realtime_report = realtime.run(fraud_log)

        periodic = FraudDetectionPipeline(dw_semantics(), detector="periodic", static_period=500.0)
        periodic.initialise(initial_log)
        periodic_report = periodic.run(fraud_log)

        assert realtime_report.fraud_prevention_ratio >= periodic_report.fraud_prevention_ratio

    def test_run_before_initialise_rejected(self, fraud_log):
        pipeline = FraudDetectionPipeline(dw_semantics())
        with pytest.raises(RuntimeError):
            pipeline.run(fraud_log)

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError):
            FraudDetectionPipeline(detector="quantum")

    def test_report_row(self, initial_log, fraud_log):
        pipeline = FraudDetectionPipeline(dw_semantics(), detector="spade")
        pipeline.initialise(initial_log)
        row = pipeline.run(fraud_log).as_row()
        assert {"detector", "processed", "blocked", "fraud prevention"} <= set(row)
