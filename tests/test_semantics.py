"""Unit tests for the density semantics (vsusp / esusp plug-ins)."""

from __future__ import annotations

import math

import pytest

from repro.errors import SemanticsError
from repro.graph.graph import DynamicGraph
from repro.peeling.semantics import (
    custom_semantics,
    dg_semantics,
    dw_semantics,
    fraudar_semantics,
    subset_density,
    subset_suspiciousness,
)


class TestBuiltInSemantics:
    def test_dg_weights_every_edge_one(self, dg):
        graph = dg.materialize([("a", "b", 7.0), ("b", "c", 0.5)])
        assert graph.edge_weight("a", "b") == 1.0
        assert graph.edge_weight("b", "c") == 1.0
        assert graph.vertex_weight("a") == 0.0

    def test_dw_uses_raw_weight(self, dw):
        graph = dw.materialize([("a", "b", 7.0), ("b", "c", 0.5)])
        assert graph.edge_weight("a", "b") == 7.0
        assert graph.edge_weight("b", "c") == 0.5

    def test_dw_accumulates_duplicate_transactions(self, dw):
        graph = dw.materialize([("a", "b", 2.0), ("a", "b", 3.0)])
        assert graph.edge_weight("a", "b") == 5.0
        assert graph.num_edges() == 1

    def test_fd_discounts_popular_destinations(self, fd):
        edges = [("a", "hub", 1.0), ("b", "hub", 1.0), ("c", "hub", 1.0), ("a", "rare", 1.0)]
        graph = fd.materialize(edges)
        # The hub has degree 3+1 in the structural graph; "rare" has degree 1.
        assert graph.edge_weight("a", "hub") < graph.edge_weight("a", "rare")

    def test_fd_formula_matches_listing2(self):
        fd = fraudar_semantics(column_constant=5.0)
        graph = DynamicGraph()
        graph.add_edge("x", "y", 1.0)
        weight = fd.edge_weight("x", "y", 1.0, graph)
        assert weight == pytest.approx(1.0 / math.log(graph.degree("y") + 5.0))

    def test_fd_vertex_priors(self):
        fd = fraudar_semantics(vertex_priors={"suspect": 2.0})
        graph = DynamicGraph()
        assert fd.vertex_weight("suspect", graph) == 2.0
        assert fd.vertex_weight("other", graph) == 0.0

    def test_names(self, dg, dw, fd):
        assert (dg.name, dw.name, fd.name) == ("DG", "DW", "FD")

    def test_with_name(self, dg):
        renamed = dg.with_name("DG-variant")
        assert renamed.name == "DG-variant"
        assert renamed.edge_susp is dg.edge_susp


class TestCustomSemantics:
    def test_custom_plugins_are_used(self):
        sem = custom_semantics(
            "amount-squared",
            edge_susp=lambda _s, _d, raw, _g: raw * raw,
            vertex_susp=lambda v, _g: 1.0 if str(v).startswith("risky") else 0.0,
        )
        graph = sem.materialize([("risky1", "m", 3.0)])
        assert graph.edge_weight("risky1", "m") == 9.0
        assert graph.vertex_weight("risky1") == 1.0
        assert graph.vertex_weight("m") == 0.0

    def test_invalid_edge_susp_rejected(self):
        sem = custom_semantics("bad", edge_susp=lambda *_: 0.0)
        with pytest.raises(SemanticsError):
            sem.edge_weight("a", "b", 1.0, DynamicGraph())

    def test_invalid_vertex_susp_rejected(self):
        sem = custom_semantics("bad", vertex_susp=lambda *_: -1.0)
        with pytest.raises(SemanticsError):
            sem.vertex_weight("a", DynamicGraph())

    def test_nan_rejected(self):
        sem = custom_semantics("bad", edge_susp=lambda *_: float("nan"))
        with pytest.raises(SemanticsError):
            sem.edge_weight("a", "b", 1.0, DynamicGraph())


class TestMaterialize:
    def test_materialize_includes_all_edge_endpoints(self, dw):
        graph = dw.materialize([("a", "b", 1.0), ("c", "d", 2.0)])
        assert set(graph.vertices()) == {"a", "b", "c", "d"}

    def test_materialize_vertex_priors_override(self, dg):
        graph = dg.materialize([("a", "b", 1.0)], vertex_priors={"a": 5.0})
        assert graph.vertex_weight("a") == 5.0

    def test_materialize_two_element_tuples_default_weight(self, dw):
        graph = dw.materialize([("a", "b")])
        assert graph.edge_weight("a", "b") == 1.0

    def test_fd_materialize_uses_final_degrees(self, fd):
        # Structural degree of "hub" is 3; every edge into it gets the same weight.
        graph = fd.materialize([("a", "hub", 1.0), ("b", "hub", 1.0), ("c", "hub", 1.0)])
        weights = {graph.edge_weight(u, "hub") for u in ("a", "b", "c")}
        assert len(weights) == 1


class TestSubsetMetrics:
    def test_subset_suspiciousness_matches_manual_sum(self, dw):
        graph = dw.materialize([("a", "b", 2.0), ("b", "c", 3.0), ("c", "a", 4.0), ("c", "d", 10.0)])
        assert subset_suspiciousness(graph, {"a", "b", "c"}) == pytest.approx(9.0)
        assert subset_density(graph, {"a", "b", "c"}) == pytest.approx(3.0)

    def test_subset_density_empty_set(self, dw):
        graph = dw.materialize([("a", "b", 2.0)])
        assert subset_density(graph, set()) == 0.0

    def test_subset_ignores_unknown_vertices(self, dw):
        graph = dw.materialize([("a", "b", 2.0)])
        assert subset_suspiciousness(graph, {"a", "b", "ghost"}) == pytest.approx(2.0)
