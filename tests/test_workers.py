"""Tests for process-resident shard workers (``repro.serve.workers``).

The tentpole guarantees under test:

* the worker-mode engine answers **bit-identically** to the in-process
  sharded engine (per update) and to a single engine (merged detection),
* a ``kill -9``'d worker is respawned from the coordinator mirror and the
  stream continues with exact answers,
* the router's partition is balanced (the hash does not clump consecutive
  or randomly sampled dense ids),
* the labeled metric families and the ``workers`` config knob behave.

Worker engines spawn real processes; the suite keeps worker counts at 2
and workloads small so the whole file stays cheap on one core.
"""

from __future__ import annotations

import os
import random
import signal

import pytest

from repro.core.reorder import ReorderStats
from repro.core.spade import Spade
from repro.engine.parallel import _staged_path
from repro.engine.router import ShardRouter
from repro.engine.sharded import ShardedSpade
from repro.engine.worker import (
    decode_state,
    decode_update,
    encode_update,
    preweighted_semantics,
)
from repro.errors import ConfigError
from repro.graph.backend import create_graph
from repro.graph.delta import EdgeUpdate
from repro.peeling.semantics import dw_semantics
from repro.serve.config import ServeConfig
from repro.serve.metrics import MetricsRegistry, SIZE_BUCKETS
from repro.serve.workers import WorkerEngine


@pytest.fixture(autouse=True)
def _single_backend_leg(graph_backend):
    if graph_backend != "array":
        pytest.skip("workers pin backend='array'; one leg is enough")


def assert_same_view(got, expected):
    """Shard-local views must match up to float accumulation order.

    Worker shards boot from the ``.npz`` snapshot rebuild, whose Kahn
    merge preserves both pool orders but not their *interleaving* — so
    the per-vertex incident-weight accumulator can differ from the
    in-process shard's by an ulp.  Membership and peel position must be
    identical; density is compared to 1e-12 relative.  (Merged
    ``detect()`` peels the coordinator mirror and stays bit-identical —
    asserted with ``==`` throughout.)
    """
    assert got.vertices == expected.vertices
    assert got.peel_index == expected.peel_index
    assert got.density == pytest.approx(expected.density, rel=1e-12)


def _workload(seed: int, initial: int = 250, streamed: int = 160):
    # Dyadic weights (k/16) keep every accumulation exact in binary FP,
    # so differential comparisons can demand bit identity (the suite-wide
    # idiom of ``tests/test_sharded.py``'s dyadic streams).
    rng = random.Random(seed)
    edges = [
        (f"u{rng.randrange(40)}", f"p{rng.randrange(30)}", rng.randrange(8, 49) / 16.0)
        for _ in range(initial)
    ]
    updates = [
        (f"u{rng.randrange(55)}", f"p{rng.randrange(40)}", rng.randrange(8, 49) / 16.0)
        for _ in range(streamed)
    ]
    return edges, updates


class TestShardRouterBalance:
    """The multiplicative hash spreads dense ids evenly across shards."""

    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_consecutive_ids_are_near_uniform(self, num_shards):
        router = ShardRouter.__new__(ShardRouter)
        router.num_shards = num_shards
        total = 20000
        counts = [0] * num_shards
        for vid in range(total):
            counts[router.shard_of_id(vid)] += 1
        expected = total / num_shards
        # Pearson chi-square against uniform; p=0.001 critical values are
        # 10.8 (df=1), 16.3 (df=3), 24.3 (df=7) — a clumping hash (e.g.
        # ``vid % k`` over strided cohorts) blows straight past these.
        chi2 = sum((count - expected) ** 2 / expected for count in counts)
        assert chi2 < 24.3
        assert max(counts) - min(counts) <= 0.02 * expected

    @pytest.mark.parametrize("num_shards", [4, 8])
    def test_random_id_subsets_stay_balanced(self, num_shards):
        # Active-vertex sets are arbitrary subsets of the id space, not
        # prefixes; the partition must stay balanced on those too.
        router = ShardRouter.__new__(ShardRouter)
        router.num_shards = num_shards
        rng = random.Random(1234)
        sample = rng.sample(range(10**6), 8000)
        counts = [0] * num_shards
        for vid in sample:
            counts[router.shard_of_id(vid)] += 1
        expected = len(sample) / num_shards
        chi2 = sum((count - expected) ** 2 / expected for count in counts)
        assert chi2 < 24.3


class TestWireProtocol:
    def test_update_row_round_trip(self):
        update = EdgeUpdate("a", "b", 2.5, src_weight=1.0, dst_weight=None)
        assert decode_update(encode_update(update)) == update

    def test_state_payload_round_trip(self):
        payload = {
            "community": ["a", "b"],
            "density": 1.5,
            "peel_index": 3,
            "stats": (1, 2, 3, 4, 5, 6),
            "pending": 7,
        }
        state = decode_state(payload)
        assert state.community.vertices == frozenset({"a", "b"})
        assert state.community.density == 1.5
        assert state.community.peel_index == 3
        assert state.pending == 7
        assert state.stats.queued_vertices == 1
        assert state.stats.repeeled_positions == 6

    def test_preweighted_semantics_is_identity(self):
        semantics = preweighted_semantics("DW")
        graph = create_graph("array")
        assert semantics.name == "DW"
        assert semantics.edge_weight("a", "b", 2.25, graph) == 2.25


class TestWorkerEngineDifferential:
    """Worker-mode answers == in-process sharded answers == single detect."""

    def test_mixed_stream_is_bit_identical(self):
        edges, updates = _workload(11)
        single = Spade(dw_semantics())
        single.load_edges(edges)
        inproc = ShardedSpade(dw_semantics(), num_shards=2, coordinator_interval=16)
        inproc.load_edges(edges)
        with WorkerEngine(
            dw_semantics(), num_shards=2, coordinator_interval=16
        ) as workers:
            workers.load_edges(edges)
            for index, (src, dst, weight) in enumerate(updates):
                if index % 4 == 3:
                    batch = [(src, dst, weight), (dst + "x", src, 1.0)]
                    single.insert_batch_edges(batch)
                    expected = inproc.insert_batch_edges(batch)
                    got = workers.insert_batch_edges(batch)
                else:
                    single.insert_edge(src, dst, weight)
                    expected = inproc.insert_edge(src, dst, weight)
                    got = workers.insert_edge(src, dst, weight)
                assert_same_view(got, expected)
                if index % 29 == 0:
                    single.delete_edges([(src, dst)])
                    expected = inproc.delete_edges([(src, dst)])
                    got = workers.delete_edges([(src, dst)])
                    assert_same_view(got, expected)
            assert workers.detect() == single.detect()
            assert workers.detect() == inproc.detect()
            for got, expected in zip(
                workers.shard_communities(), inproc.shard_communities()
            ):
                assert_same_view(got, expected)
            assert workers.worker_restarts == [0, 0]
            assert isinstance(workers.last_stats, ReorderStats)

    def test_flush_and_pending_surfaces(self):
        edges, updates = _workload(23, initial=120, streamed=40)
        inproc = ShardedSpade(dw_semantics(), num_shards=2, coordinator_interval=10**6)
        inproc.load_edges(edges)
        with WorkerEngine(
            dw_semantics(), num_shards=2, coordinator_interval=10**6
        ) as workers:
            workers.load_edges(edges)
            for src, dst, weight in updates:
                expected = inproc.insert_edge(src, dst, weight)
                assert_same_view(workers.insert_edge(src, dst, weight), expected)
            assert workers.pending_edges() == inproc.pending_edges()
            assert_same_view(workers.flush_pending(), inproc.flush_pending())
            assert workers.pending_edges() == 0


class TestWorkerCrashRecovery:
    """SIGKILL a worker mid-stream: respawn from the mirror, stay exact."""

    def test_kill_minus_nine_respawns_bit_identical(self):
        edges, updates = _workload(31)
        single = Spade(dw_semantics())
        single.load_edges(edges)
        with WorkerEngine(
            dw_semantics(), num_shards=2, coordinator_interval=16
        ) as workers:
            workers.load_edges(edges)
            half = len(updates) // 2
            for src, dst, weight in updates[:half]:
                single.insert_edge(src, dst, weight)
                workers.insert_edge(src, dst, weight)
            victim = workers.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            for src, dst, weight in updates[half:]:
                single.insert_edge(src, dst, weight)
                workers.insert_edge(src, dst, weight)
            assert workers.worker_restarts[0] == 1
            assert workers.worker_restarts[1] == 0
            assert workers.worker_pids()[0] != victim
            assert workers.detect() == single.detect()

    def test_kill_with_parked_updates_does_not_double_apply(self):
        # A huge coordinator interval keeps cross-shard updates parked;
        # the respawn must drop the dead shard's parked slice (the mirror
        # already holds those updates) or the drain would apply them twice.
        edges, updates = _workload(47, initial=150, streamed=60)
        single = Spade(dw_semantics())
        single.load_edges(edges)
        with WorkerEngine(
            dw_semantics(), num_shards=2, coordinator_interval=10**6
        ) as workers:
            workers.load_edges(edges)
            for src, dst, weight in updates:
                single.insert_edge(src, dst, weight)
                workers.insert_edge(src, dst, weight)
            os.kill(workers.worker_pids()[1], signal.SIGKILL)
            # Next intra-shard dispatch on shard 1 notices the corpse.
            for src, dst, weight in updates[:20]:
                single.insert_edge(src, dst, weight * 1.5)
                workers.insert_edge(src, dst, weight * 1.5)
            assert sum(workers.worker_restarts) >= 1
            assert workers.detect() == single.detect()


class TestWorkerMetrics:
    def test_per_shard_metrics_exported(self):
        registry = MetricsRegistry()
        edges, updates = _workload(5, initial=100, streamed=30)
        with WorkerEngine(
            dw_semantics(), num_shards=2, coordinator_interval=8, metrics=registry
        ) as workers:
            workers.load_edges(edges)
            for src, dst, weight in updates:
                workers.insert_edge(src, dst, weight)
            os.kill(workers.worker_pids()[0], signal.SIGKILL)
            for src, dst, weight in updates:
                workers.insert_edge(src, dst, weight * 1.1)
            workers.detect()
            text = registry.render()
        assert 'repro_worker_apply_seconds_count{shard="0"}' in text
        assert 'repro_worker_apply_seconds_count{shard="1"}' in text
        assert 'repro_worker_restarts_total{shard="0"} 1' in text
        assert 'repro_worker_queue_depth{shard="0"}' in text
        assert text.count("# TYPE repro_worker_apply_seconds histogram") == 1


class TestMetricFamilies:
    """The labeled child-metric model of ``repro.serve.metrics``."""

    def test_family_children_render_under_one_header(self):
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", "jobs", labelnames=("shard",))
        family.labels(shard=0).inc()
        family.labels(shard=1).inc(2)
        family.labels(shard=0).inc()
        text = registry.render()
        assert text.count("# HELP jobs_total jobs") == 1
        assert 'jobs_total{shard="0"} 2' in text
        assert 'jobs_total{shard="1"} 2' in text

    def test_histogram_family_merges_le_label(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "batch_edges", "edges", buckets=SIZE_BUCKETS, labelnames=("shard",)
        )
        family.labels(shard=3).observe(2)
        text = registry.render()
        assert 'batch_edges_bucket{shard="3",le="2"} 1' in text
        assert 'batch_edges_bucket{shard="3",le="+Inf"} 1' in text
        assert 'batch_edges_sum{shard="3"} 2' in text

    def test_wrong_label_names_rejected(self):
        registry = MetricsRegistry()
        family = registry.gauge("depth", "d", labelnames=("shard",))
        with pytest.raises(ValueError):
            family.labels(worker=1)


class TestServeConfigWorkers:
    def test_workers_knob_round_trips(self):
        config = ServeConfig(workers=4)
        assert ServeConfig.from_dict(config.to_dict()) == config
        assert config.replace(workers=0).workers == 0

    @pytest.mark.parametrize("bad", [-1, 65])
    def test_workers_out_of_range_rejected(self, bad):
        with pytest.raises(ConfigError):
            ServeConfig(workers=bad)

    def test_cli_workers_override(self):
        from repro.serve.cli import build_parser, _resolve_config

        args = build_parser().parse_args(["--workers", "4", "--port", "0"])
        config = _resolve_config(args)
        assert config.serve.workers == 4
        assert config.serve.port == 0


class TestParallelSnapshotCache:
    """Unchanged graphs reuse their staged ``.npz`` between calls."""

    def test_unchanged_graph_skips_resave(self):
        graph = create_graph("array")
        graph.add_vertex("a", 1.0)
        graph.add_vertex("b", 1.0)
        graph.add_edge("a", "b", 2.0)
        first = _staged_path(graph, graph.freeze())
        mtime = os.path.getmtime(first)
        again = _staged_path(graph, graph.freeze())
        assert again == first
        assert os.path.getmtime(first) == mtime
        graph.add_edge("b", "a", 1.0)
        changed = _staged_path(graph, graph.freeze())
        assert changed != first
