"""Tests for repro.history: time travel, the cold store, and analytics.

Covers the as-of read path (bit-identity with offline WAL-prefix replay,
LRU cache, range errors), the SQLite cold store (idempotent checksummed
epoch appends, knob guard), the indexer (resume idempotency), the
window-function queries with keyset-cursor pagination, the streaming WAL
scanner satellite, and the HTTP surface (``?asof=``, ``cursor=``,
``/v1/history/...``, the new ``/healthz`` fields).
"""

from __future__ import annotations

import asyncio
import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.api.events import InsertBatch
from repro.errors import AsofRangeError, ConfigError, HistoryError
from repro.graph.delta import EdgeUpdate
from repro.history import HistoryConfig
from repro.history.asof import AsofService
from repro.history.cursor import cursor_int, decode_cursor, encode_cursor
from repro.history.indexer import HistoryIndexer, resolve_db_path
from repro.history.queries import (
    community_timeline,
    epochs_page,
    vertex_first_entry,
    vertex_history,
)
from repro.history.store import HISTORY_FILENAME, HistoryStore, connect
from repro.serve.app import ServeApp
from repro.serve.config import ServeConfig
from repro.serve.wal import WriteAheadLog, iter_ops, scan_ops


@pytest.fixture(autouse=True)
def _single_backend_leg(graph_backend):
    if graph_backend != "array":
        pytest.skip("history pins backend='array'; one leg is enough")


def serve_config(tmp_path, **overrides) -> EngineConfig:
    knobs = {
        "port": 0,
        "wal_dir": str(tmp_path / "wal"),
        "fsync": False,
        "max_delay_ms": 1.0,
    }
    knobs.update(overrides)
    return EngineConfig(semantics="DW", backend="array", serve=ServeConfig(**knobs))


def drive(app: ServeApp, requests):
    """Start ``app``, issue HTTP requests over one keep-alive connection.

    A request may also be the string ``"poke-indexer"`` — runs one
    deterministic indexer step in place of an HTTP round trip (appends
    ``None`` to the results to keep indices aligned).
    """

    async def _drive():
        await app.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", app.server.port
            )
            results = []
            for item in requests:
                if item == "poke-indexer":
                    await app._indexer_task.poke()
                    results.append(None)
                    continue
                method, path, body = item
                payload = b"" if body is None else json.dumps(body).encode()
                head = (
                    f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                )
                writer.write(head.encode() + payload)
                await writer.drain()
                status_line = (await reader.readline()).decode()
                headers = {}
                while True:
                    line = (await reader.readline()).decode().strip()
                    if not line:
                        break
                    name, _, value = line.partition(":")
                    headers[name.lower()] = value.strip()
                data = await reader.readexactly(int(headers["content-length"]))
                body_out = (
                    json.loads(data)
                    if "json" in headers.get("content-type", "")
                    else data.decode()
                )
                results.append((int(status_line.split()[1]), body_out))
            writer.close()
            return results
        finally:
            await app.stop()

    return asyncio.run(_drive())


def offline_replay_prefix(wal_dir, max_seq):
    """A fresh client replayed through the WAL prefix with seq <= max_seq."""
    ops, _, corruption = scan_ops(WriteAheadLog.path_in(wal_dir))
    assert corruption is None
    client = SpadeClient(EngineConfig(semantics="DW", backend="array"))
    client.load([])
    for seq, op in ops:
        if seq > max_seq:
            break
        client.apply([op])
    return client


# ---------------------------------------------------------------------- #
# HistoryConfig
# ---------------------------------------------------------------------- #
class TestHistoryConfig:
    def test_defaults_validate(self):
        config = HistoryConfig()
        assert config.db_path is None
        assert config.epoch_interval == 64

    @pytest.mark.parametrize(
        "bad",
        [
            {"epoch_interval": 0},
            {"poll_ms": 0},
            {"asof_cache_size": 0},
            {"max_instances": 0},
            {"min_density": -0.5},
            {"min_size": 0},
            {"db_path": 7},
        ],
    )
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ConfigError):
            HistoryConfig(**bad)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown HistoryConfig keys"):
            HistoryConfig.from_dict({"epoch_intervall": 5})

    def test_nested_round_trip_through_engine_config(self):
        config = EngineConfig(
            serve={"wal_dir": "/tmp/w", "history": {"epoch_interval": 7}}
        )
        assert isinstance(config.serve.history, HistoryConfig)
        assert config.serve.history.epoch_interval == 7
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_serve_history_rejects_garbage(self):
        with pytest.raises(ConfigError):
            ServeConfig(history=42)

    def test_resolve_db_path(self, tmp_path):
        assert resolve_db_path(tmp_path, HistoryConfig()) == tmp_path / HISTORY_FILENAME
        explicit = HistoryConfig(db_path=str(tmp_path / "x.sqlite"))
        assert resolve_db_path(tmp_path, explicit) == tmp_path / "x.sqlite"


# ---------------------------------------------------------------------- #
# Cursor tokens
# ---------------------------------------------------------------------- #
class TestCursor:
    def test_round_trip(self):
        token = encode_cursor("communities", rank=4)
        position = decode_cursor(token, "communities")
        assert cursor_int(position, "rank") == 4

    def test_garbage_rejected(self):
        with pytest.raises(HistoryError):
            decode_cursor("!!!not-base64!!!", "communities")

    def test_kind_mismatch_rejected(self):
        token = encode_cursor("epochs", seq=10)
        with pytest.raises(HistoryError, match="not a 'communities' cursor"):
            decode_cursor(token, "communities")

    def test_non_integer_field_rejected(self):
        token = encode_cursor("communities", rank="four")
        with pytest.raises(HistoryError):
            cursor_int(decode_cursor(token, "communities"), "rank")


# ---------------------------------------------------------------------- #
# Streaming WAL scan (satellite: iter_ops / scan_ops equivalence)
# ---------------------------------------------------------------------- #
def _write_wal(tmp_path, num_ops):
    wal = WriteAheadLog(tmp_path, fsync=False)
    for i in range(num_ops):
        wal.append_op(InsertBatch((EdgeUpdate(f"s{i}", f"d{i}", 1.0),)))
    wal.close()
    return WriteAheadLog.path_in(tmp_path)


class TestIterOps:
    def test_matches_scan_ops_clean(self, tmp_path):
        path = _write_wal(tmp_path, 7)
        scan = iter_ops(path)
        streamed = list(scan)
        ops, offset, corruption = scan_ops(path)
        assert [s for s, _ in streamed] == [s for s, _ in ops] == list(range(1, 8))
        assert scan.next_offset == offset == path.stat().st_size
        assert scan.corruption is None and corruption is None

    def test_torn_final_line_is_clean_stop(self, tmp_path):
        path = _write_wal(tmp_path, 3)
        whole = path.read_bytes()
        path.write_bytes(whole + b'{"seq": 4, "torn')  # no newline: crash residue
        scan = iter_ops(path)
        assert len(list(scan)) == 3
        assert scan.corruption is None
        assert scan.next_offset == len(whole)

    def test_midfile_garbage_is_corruption(self, tmp_path):
        path = _write_wal(tmp_path, 3)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b"garbage line\n" + lines[1] + lines[2])
        scan = iter_ops(path)
        assert len(list(scan)) == 1
        assert scan.corruption is not None
        _, _, corruption = scan_ops(path)
        assert corruption == scan.corruption

    def test_offset_resume(self, tmp_path):
        path = _write_wal(tmp_path, 5)
        first = iter_ops(path)
        seqs = [next(first)[0], next(first)[0]]
        first.close()
        resumed = iter_ops(path, first.next_offset)
        assert seqs + [s for s, _ in resumed] == list(range(1, 6))

    def test_missing_file(self, tmp_path):
        path = tmp_path / "records.jsonl"
        scan = iter_ops(path)
        assert list(scan) == []
        assert scan.next_offset == 0


# ---------------------------------------------------------------------- #
# The cold store
# ---------------------------------------------------------------------- #
EPOCH_A = [(0, 2.5, ["a", "b", "c"]), (1, 1.25, ["d", "e"])]
EPOCH_B = [(0, 3.5, ["a", "b"])]


class TestHistoryStore:
    def test_record_is_idempotent(self, tmp_path):
        with HistoryStore(tmp_path / "h.sqlite") as store:
            assert store.record_epoch(10, 5, 6, EPOCH_A) is True
            assert store.record_epoch(10, 5, 6, EPOCH_A) is False
            assert store.epoch_count() == 1
            assert store.epoch_seqs() == [10]

    def test_checksum_divergence_raises(self, tmp_path):
        with HistoryStore(tmp_path / "h.sqlite") as store:
            store.record_epoch(10, 5, 6, EPOCH_A)
            with pytest.raises(HistoryError, match="checksum"):
                store.record_epoch(10, 5, 6, EPOCH_B)

    def test_verify_epoch_detects_tampering(self, tmp_path):
        path = tmp_path / "h.sqlite"
        with HistoryStore(path) as store:
            store.record_epoch(10, 5, 6, EPOCH_A)
            assert store.verify_epoch(10) is True
            store.conn.execute(
                "UPDATE communities SET density = 9.9 WHERE epoch_seq = 10 AND rank = 0"
            )
            store.conn.commit()
            assert store.verify_epoch(10) is False

    def test_vertex_spans_maintained(self, tmp_path):
        with HistoryStore(tmp_path / "h.sqlite") as store:
            store.record_epoch(10, 5, 6, EPOCH_A)
            store.record_epoch(20, 5, 7, EPOCH_B)
            rows = dict(
                (v, (f, l, n))
                for v, f, l, n in store.conn.execute(
                    "SELECT vertex, first_seq, last_seq, dense_epochs FROM vertex_spans"
                )
            )
            assert rows["a"] == (10, 20, 2)
            assert rows["d"] == (10, 10, 1)

    def test_meta_guard_refuses_knob_change(self, tmp_path):
        path = tmp_path / "h.sqlite"
        with HistoryStore(path) as store:
            store.ensure_meta({"epoch_interval": 8})
        with HistoryStore(path) as store:
            store.ensure_meta({"epoch_interval": 8})  # unchanged: fine
            with pytest.raises(HistoryError, match="different knobs"):
                store.ensure_meta({"epoch_interval": 16})


# ---------------------------------------------------------------------- #
# Analytics queries
# ---------------------------------------------------------------------- #
@pytest.fixture()
def populated_store(tmp_path):
    path = tmp_path / "h.sqlite"
    with HistoryStore(path) as store:
        store.record_epoch(10, 6, 4, [(0, 1.0, ["a", "b", "c"])])
        store.record_epoch(20, 8, 9, [(0, 2.0, ["a", "b"]), (1, 0.5, ["c", "d"])])
        store.record_epoch(30, 9, 12, [(0, 3.5, ["a", "b", "d"])])
        store.record_epoch(40, 9, 14, [(0, 3.0, ["b", "d"])])
    conn = connect(path)
    yield conn
    conn.close()


class TestQueries:
    def test_vertex_first_entry(self, populated_store):
        first = vertex_first_entry(populated_store, "d")
        assert first["first_seq"] == 20 and first["rank"] == 1
        assert first["dense_epochs"] == 3
        assert vertex_first_entry(populated_store, "zz") is None
        # Thresholds move the first entry.
        dense = vertex_first_entry(populated_store, "d", min_density=1.0)
        assert dense["first_seq"] == 30

    def test_vertex_history_pagination_preserves_lag(self, populated_store):
        page1 = vertex_history(populated_store, "a", limit=2)
        assert [r["epoch_seq"] for r in page1["appearances"]] == [10, 20]
        assert page1["has_more"] is True
        page2 = vertex_history(populated_store, "a", cursor=page1["next_cursor"], limit=2)
        assert [r["epoch_seq"] for r in page2["appearances"]] == [30]
        # The LAG gap at the page boundary sees across the cursor: the
        # window runs over the full history, not the page.
        assert page2["appearances"][0]["seqs_since_prev"] == 10
        assert page2["has_more"] is False and page2["next_cursor"] is None

    def test_community_timeline_deltas_across_pages(self, populated_store):
        page1 = community_timeline(populated_store, rank=0, limit=2)
        assert [r["epoch_seq"] for r in page1["timeline"]] == [10, 20]
        assert page1["timeline"][0]["density_delta"] is None
        assert page1["timeline"][1]["density_delta"] == 1.0
        page2 = community_timeline(
            populated_store, rank=0, cursor=page1["next_cursor"], limit=2
        )
        assert [r["epoch_seq"] for r in page2["timeline"]] == [30, 40]
        assert page2["timeline"][0]["density_delta"] == 1.5  # 3.5 - 2.0, cross-page
        assert page2["timeline"][1]["size_delta"] == -1

    def test_epochs_page(self, populated_store):
        page = epochs_page(populated_store, limit=3)
        assert [r["seq"] for r in page["epochs"]] == [10, 20, 30]
        assert page["has_more"] is True
        rest = epochs_page(populated_store, cursor=page["next_cursor"], limit=3)
        assert [r["seq"] for r in rest["epochs"]] == [40]
        assert rest["has_more"] is False


# ---------------------------------------------------------------------- #
# As-of reads
# ---------------------------------------------------------------------- #
def _ingest_requests(rows, chunk=1):
    return [
        ("POST", "/v1/edges", {"edges": [list(r) for r in rows[i : i + chunk]]})
        for i in range(0, len(rows), chunk)
    ]


#: Fresh-directory counter for the hypothesis property test — examples with
#: identical draws must not share (and thus re-recover) a WAL directory.
_WAL_DIRS = itertools.count()

ROWS = [
    ["u1", "v1", 4.0], ["u2", "v1", 2.0], ["u1", "v2", 8.0],
    ["u3", "v3", 1.0], ["u2", "v2", 6.0], ["u4", "v1", 3.0],
    ["u3", "v1", 5.0], ["u1", "v3", 2.0], ["u5", "v5", 1.0],
    ["u4", "v4", 7.0], ["u2", "v3", 3.0], ["u5", "v2", 4.0],
]


class TestAsofHttp:
    def test_edge_cases_and_cache(self, tmp_path):
        config = serve_config(tmp_path, checkpoint_interval=4)
        app = ServeApp(config)
        results = drive(
            app,
            _ingest_requests(ROWS)
            + [
                ("GET", "/v1/detect?asof=0", None),
                ("GET", "/v1/detect?asof=5", None),
                ("GET", "/v1/detect?asof=5", None),  # cached
                ("GET", f"/v1/detect?asof={len(ROWS)}", None),
                ("GET", "/v1/detect", None),
                ("GET", f"/v1/detect?asof={len(ROWS) + 1}", None),
                ("GET", "/v1/detect?asof=-1", None),
                ("GET", "/v1/detect?asof=x", None),
                ("GET", "/healthz", None),
            ],
        )
        n = len(ROWS)
        empty = results[n][1]
        assert results[n][0] == 200 and empty["asof"] == 0
        assert empty["community"] == [] and empty["edges"] == 0
        assert results[n + 1][0] == results[n + 2][0] == 200
        assert results[n + 1][1] == results[n + 2][1]
        at_head, live = results[n + 3][1], results[n + 4][1]
        assert at_head["asof"] == n
        for key in ("community", "density", "peel_index", "vertices", "edges"):
            assert at_head[key] == live[key], key
        assert results[n + 5][0] == 400  # beyond head
        assert "outside the WAL range" in results[n + 5][1]["error"]
        assert results[n + 6][0] == 400  # negative
        assert results[n + 7][0] == 400  # not an integer
        health = results[n + 8][1]
        assert health["wal_seq"] == n
        assert health["checkpoint_seq"] == 12  # last multiple of 4 edges
        cache = health["asof_cache"]
        assert cache["hits"] >= 1 and cache["misses"] >= 3

    def test_asof_without_wal_dir_is_400(self):
        config = EngineConfig(
            semantics="DW", backend="array", serve=ServeConfig(port=0)
        )
        app = ServeApp(config)
        results = drive(app, [("GET", "/v1/detect?asof=0", None)])
        assert results[0][0] == 400
        assert "WAL directory" in results[0][1]["error"]

    def test_asof_exactly_at_checkpoint_seq(self, tmp_path):
        config = serve_config(tmp_path, checkpoint_interval=4)
        app = ServeApp(config)
        results = drive(
            app,
            _ingest_requests(ROWS)
            + [("GET", "/v1/detect?asof=4", None), ("GET", "/healthz", None)],
        )
        report = results[len(ROWS)][1]
        assert report["asof"] == 4
        offline = offline_replay_prefix(tmp_path / "wal", 4).detect()
        assert report["community"] == sorted(map(str, offline.vertices))
        assert report["density"] == offline.density

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_asof_bit_identical_to_offline_prefix_replay(self, tmp_path, data):
        """detect?asof=S == offline replay of WAL prefix <= S, any S.

        checkpoint_interval=3 cuts several checkpoints across the run
        (keep=2 prunes the middle ones; checkpoint zero survives), so the
        drawn sequences land before, between, at, and after checkpoint
        boundaries — the reconstruction must be exact from every anchor.
        """
        num = data.draw(st.integers(min_value=1, max_value=len(ROWS)), label="events")
        asof_points = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=num), min_size=1, max_size=4
            ),
            label="asof",
        )
        wal_dir = tmp_path / f"wal-{next(_WAL_DIRS)}"
        config = EngineConfig(
            semantics="DW",
            backend="array",
            serve=ServeConfig(
                port=0, wal_dir=str(wal_dir), fsync=False,
                max_delay_ms=1.0, checkpoint_interval=3,
            ),
        )
        app = ServeApp(config)
        queries = [("GET", f"/v1/detect?asof={s}", None) for s in asof_points]
        results = drive(app, _ingest_requests(ROWS[:num]) + queries)
        for s, (status, report) in zip(asof_points, results[num:]):
            assert status == 200
            offline = offline_replay_prefix(wal_dir, s).detect()
            assert report["community"] == sorted(map(str, offline.vertices)), s
            assert report["density"] == offline.density, s
            assert report["peel_index"] == offline.peel_index, s


class TestAsofService:
    def test_range_errors(self, tmp_path):
        config = serve_config(tmp_path)
        app = ServeApp(config)
        drive(app, _ingest_requests(ROWS[:3]))
        service = AsofService(config)
        assert service.head_seq() == 3
        with pytest.raises(AsofRangeError):
            service.snapshot_at(4, head=3)
        with pytest.raises(AsofRangeError):
            service.snapshot_at(-1, head=3)

    def test_lru_eviction(self, tmp_path):
        config = serve_config(tmp_path)
        app = ServeApp(config)
        drive(app, _ingest_requests(ROWS[:4]))
        service = AsofService(config, cache_size=2)
        for seq in (1, 2, 3):
            service.snapshot_at(seq, head=4)
        assert service.cache_stats()["size"] == 2
        service.snapshot_at(1, head=4)  # evicted: a miss again
        assert service.misses == 4 and service.hits == 0


# ---------------------------------------------------------------------- #
# The indexer
# ---------------------------------------------------------------------- #
class TestIndexer:
    def _wal_with_edges(self, tmp_path, num=12):
        config = serve_config(tmp_path, checkpoint_interval=5)
        drive(ServeApp(config), _ingest_requests(ROWS[:num]))
        return config

    def test_index_and_resume_idempotent(self, tmp_path):
        config = self._wal_with_edges(tmp_path)
        history = HistoryConfig(epoch_interval=4)
        wal_dir = tmp_path / "wal"
        indexer = HistoryIndexer(wal_dir, history, config=config)
        report = indexer.step()
        assert report["new_epochs"] == 3
        assert report["last_indexed_seq"] == 12
        # A fresh indexer (new process after a crash) re-derives nothing.
        again = HistoryIndexer(wal_dir, history, config=config)
        report2 = again.step()
        assert report2["new_epochs"] == 0
        assert report2["last_indexed_seq"] == 12
        with HistoryStore(resolve_db_path(wal_dir, history)) as store:
            assert store.epoch_seqs() == [4, 8, 12]
            assert all(store.verify_epoch(s) for s in (4, 8, 12))

    def test_incremental_steps_only_index_new_epochs(self, tmp_path):
        config = serve_config(tmp_path, checkpoint_interval=5)
        history = HistoryConfig(epoch_interval=3)
        wal_dir = tmp_path / "wal"
        drive(ServeApp(config), _ingest_requests(ROWS[:6]))
        indexer = HistoryIndexer(wal_dir, history, config=config)
        assert indexer.step()["new_epochs"] == 2  # seqs 3, 6
        drive(ServeApp(config), _ingest_requests(ROWS[6:12]))
        report = indexer.step()  # resident client tails the suffix
        assert report["new_epochs"] == 2  # seqs 9, 12
        assert report["last_indexed_seq"] == 12

    def test_knob_change_refused(self, tmp_path):
        config = self._wal_with_edges(tmp_path)
        wal_dir = tmp_path / "wal"
        HistoryIndexer(wal_dir, HistoryConfig(epoch_interval=4), config=config).step()
        with pytest.raises(HistoryError, match="different knobs"):
            HistoryIndexer(
                wal_dir, HistoryConfig(epoch_interval=6), config=config
            ).step()

    def test_epochs_match_offline_enumeration(self, tmp_path):
        config = self._wal_with_edges(tmp_path)
        wal_dir = tmp_path / "wal"
        history = HistoryConfig(epoch_interval=6, min_size=2)
        HistoryIndexer(wal_dir, history, config=config).step()
        offline = offline_replay_prefix(wal_dir, 6)
        expected = [
            (i.rank, i.density, sorted(map(str, i.vertices)))
            for i in offline.communities(max_instances=history.max_instances)
        ]
        with connect(resolve_db_path(wal_dir, history)) as conn:
            rows = []
            for rank, density in conn.execute(
                "SELECT rank, density FROM communities WHERE epoch_seq = 6 ORDER BY rank"
            ):
                vertices = [
                    v
                    for (v,) in conn.execute(
                        "SELECT vertex FROM memberships WHERE epoch_seq = 6 "
                        "AND rank = ? ORDER BY vertex",
                        (rank,),
                    )
                ]
                rows.append((rank, density, vertices))
        assert rows == expected


# ---------------------------------------------------------------------- #
# HTTP surface: /v1/history + cursor pagination + healthz wiring
# ---------------------------------------------------------------------- #
class TestHistoryHttp:
    def test_disabled_answers_404(self, tmp_path):
        app = ServeApp(serve_config(tmp_path))
        results = drive(app, [("GET", "/v1/history/epochs", None)])
        assert results[0][0] == 404
        assert "not enabled" in results[0][1]["error"]

    def test_endpoints_over_live_indexer(self, tmp_path):
        config = serve_config(
            tmp_path,
            checkpoint_interval=5,
            history=HistoryConfig(epoch_interval=4, poll_ms=10000.0),
        )
        app = ServeApp(config)
        results = drive(
            app,
            _ingest_requests(ROWS)
            + [
                "poke-indexer",
                ("GET", "/v1/history/epochs", None),
                ("GET", "/v1/history/communities?rank=0&limit=2", None),
                ("GET", "/v1/history/vertices/u1?limit=2", None),
                ("GET", "/healthz", None),
            ],
        )
        n = len(ROWS) + 1
        status, epochs = results[n]
        assert status == 200
        assert [e["seq"] for e in epochs["epochs"]] == [4, 8, 12]
        status, timeline = results[n + 1]
        assert status == 200
        assert [t["epoch_seq"] for t in timeline["timeline"]] == [4, 8]
        assert timeline["has_more"] is True
        status, vertex = results[n + 2]
        assert status == 200
        assert vertex["vertex"] == "u1"
        assert vertex["first_entry"] is not None
        health = results[n + 3][1]
        assert health["history"]["last_indexed_seq"] == 12
        assert health["history"]["last_error"] is None
        assert health["history"]["db_path"].endswith(HISTORY_FILENAME)

    def test_cursor_pagination_walks_all_communities(self, tmp_path):
        app = ServeApp(serve_config(tmp_path))
        ingest = _ingest_requests(ROWS)
        results = drive(
            app, ingest + [("GET", "/v1/communities?limit=100&min_size=2", None)]
        )
        full = results[len(ingest)][1]["communities"]
        assert len(full) >= 2  # the workload must actually paginate

        walked = []
        token = None
        for _ in range(len(full) + 1):
            path = "/v1/communities?limit=1&min_size=2" + (
                f"&cursor={token}" if token else ""
            )
            # A fresh app per page: the cursor must survive recovery, not
            # just live process state.
            status, page = drive(ServeApp(serve_config(tmp_path)), [("GET", path, None)])[0]
            assert status == 200
            walked.extend(page["communities"])
            if not page["has_more"]:
                assert page["next_cursor"] is None
                break
            token = page["next_cursor"]
        assert walked == full

    def test_offset_mode_still_works(self, tmp_path):
        app = ServeApp(serve_config(tmp_path))
        ingest = _ingest_requests(ROWS)
        results = drive(
            app,
            ingest
            + [
                ("GET", "/v1/communities?limit=1&min_size=2", None),
                ("GET", "/v1/communities?offset=1&limit=1&min_size=2", None),
                ("GET", "/v1/communities?limit=2&min_size=2", None),
            ],
        )
        n = len(ingest)
        first, second, both = (results[n + i][1] for i in range(3))
        assert first["offset"] == 0 and second["offset"] == 1
        assert first["communities"] + second["communities"] == both["communities"]

    def test_bad_cursor_is_400(self, tmp_path):
        app = ServeApp(serve_config(tmp_path))
        results = drive(app, [("GET", "/v1/communities?cursor=@@@", None)])
        assert results[0][0] == 400
