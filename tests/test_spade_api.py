"""Tests for the public Spade API (Listing 1 / Listing 2)."""

from __future__ import annotations

import pytest

from repro import Spade, dg_semantics, dw_semantics, fraudar_semantics
from repro.errors import StateError
from repro.graph.delta import EdgeUpdate

from tests.helpers import assert_matches_static


EDGES = [
    ("u1", "u2", 2.0),
    ("u2", "u3", 1.0),
    ("u1", "u3", 4.0),
    ("u3", "u4", 2.0),
    ("u4", "u5", 2.0),
]


class TestLifecycle:
    def test_default_semantics_is_dg(self):
        assert Spade().semantics.name == "DG"

    def test_detect_before_load_raises(self):
        with pytest.raises(StateError):
            Spade().detect()

    def test_load_edges_and_detect(self, dw):
        spade = Spade(dw)
        result = spade.load_edges(EDGES)
        assert result.community == spade.detect().vertices
        assert spade.graph.num_edges() == len(EDGES)

    def test_load_graph_adopts_existing_graph(self, dw, two_block_graph):
        spade = Spade(dw)
        spade.load_graph(two_block_graph)
        assert spade.graph is two_block_graph

    def test_load_edges_with_priors(self):
        spade = Spade(fraudar_semantics())
        spade.load_edges(EDGES, vertex_priors={"u1": 2.0})
        assert spade.graph.vertex_weight("u1") == 2.0

    def test_repr_mentions_semantics(self, dw):
        spade = Spade(dw)
        assert "DW" in repr(spade)


class TestCustomSemantics:
    def test_set_suspiciousness_before_load(self):
        spade = Spade()
        spade.set_suspiciousness(
            edge_susp=lambda _s, _d, raw, _g: raw * 2.0,
            name="double",
        )
        spade.load_edges([("a", "b", 3.0)])
        assert spade.graph.edge_weight("a", "b") == 6.0
        assert spade.semantics.name == "double"

    def test_set_suspiciousness_after_load_rejected(self, dw):
        spade = Spade(dw)
        spade.load_edges(EDGES)
        with pytest.raises(StateError):
            spade.set_suspiciousness(name="late")


class TestUpdates:
    def test_insert_edge_returns_updated_community(self, dw):
        spade = Spade(dw)
        spade.load_edges(EDGES)
        community = spade.insert_edge("u4", "u5", 50.0)
        assert {"u4", "u5"} <= set(community.vertices)
        assert_matches_static(spade.state)

    def test_insert_batch_edges(self, dw):
        spade = Spade(dw)
        spade.load_edges(EDGES)
        community = spade.insert_batch_edges([("u5", "u1", 3.0), EdgeUpdate("u2", "u5", 2.0)])
        assert community.density > 0
        assert spade.graph.has_edge("u5", "u1")
        assert_matches_static(spade.state)

    def test_delete_edges(self, dw):
        spade = Spade(dw)
        spade.load_edges(EDGES)
        spade.delete_edges([("u1", "u3")])
        assert not spade.graph.has_edge("u1", "u3")
        assert_matches_static(spade.state)

    def test_delete_edge_singular(self, dw):
        """delete_edge(src, dst) mirrors insert_edge's singular convenience."""
        spade = Spade(dw)
        spade.load_edges(EDGES)
        community = spade.delete_edge("u1", "u3")
        assert not spade.graph.has_edge("u1", "u3")
        assert community == spade.detect()
        assert_matches_static(spade.state)

    def test_delete_edge_matches_delete_edges(self, dw):
        singular = Spade(dw)
        singular.load_edges(EDGES)
        plural = Spade(dw)
        plural.load_edges(EDGES)
        assert singular.delete_edge("u3", "u4") == plural.delete_edges([("u3", "u4")])
        assert singular.result() == plural.result()
        assert singular.last_stats == plural.last_stats

    def test_delete_edge_sharded(self, dw):
        from repro.engine import ShardedSpade

        sharded = ShardedSpade(dw, num_shards=2)
        sharded.load_edges(EDGES)
        sharded.delete_edge("u1", "u3")
        assert not sharded.graph.has_edge("u1", "u3")

    def test_last_stats_exposes_affected_area(self, dw):
        spade = Spade(dw)
        spade.load_edges(EDGES)
        spade.insert_edge("u1", "u5", 1.0)
        assert spade.last_stats.affected_area > 0

    def test_result_export(self, dw):
        spade = Spade(dw)
        spade.load_edges(EDGES)
        result = spade.result()
        assert set(result.order) == {f"u{i}" for i in range(1, 6)}

    def test_enumerate_frauds(self, dw):
        spade = Spade(dw)
        spade.load_edges(EDGES)
        instances = spade.enumerate_frauds(max_instances=2, min_density=0.1)
        assert instances
        assert instances[0].vertices == spade.detect().vertices


class TestEdgeGroupingIntegration:
    def test_grouping_buffers_benign_edges(self, dw, two_block_graph):
        spade = Spade(dw, edge_grouping=True)
        spade.load_graph(two_block_graph)
        spade.insert_edge("l2", "l0", 0.05)
        assert spade.pending_edges() == 1
        assert not spade.graph.has_edge("l2", "l0")

    def test_urgent_edge_flushes(self, dw, two_block_graph):
        spade = Spade(dw, edge_grouping=True)
        spade.load_graph(two_block_graph)
        spade.insert_edge("l2", "l0", 0.05)
        spade.insert_edge("h0", "h2", 9.0)
        assert spade.pending_edges() == 0
        assert spade.graph.has_edge("l2", "l0")

    def test_flush_pending(self, dw, two_block_graph):
        spade = Spade(dw, edge_grouping=True)
        spade.load_graph(two_block_graph)
        spade.insert_edge("l2", "l0", 0.05)
        spade.flush_pending()
        assert spade.pending_edges() == 0
        assert spade.graph.has_edge("l2", "l0")

    def test_enable_after_load(self, dw, two_block_graph):
        spade = Spade(dw)
        spade.load_graph(two_block_graph)
        spade.enable_edge_grouping()
        spade.insert_edge("l2", "l0", 0.05)
        assert spade.pending_edges() == 1
        spade.disable_edge_grouping()
        assert spade.pending_edges() == 0
        assert spade.graph.has_edge("l2", "l0")

    def test_batch_insert_flushes_pending_first(self, dw, two_block_graph):
        spade = Spade(dw, edge_grouping=True)
        spade.load_graph(two_block_graph)
        spade.insert_edge("l2", "l0", 0.05)
        spade.insert_batch_edges([("l2", "l1", 0.05)])
        assert spade.pending_edges() == 0
        assert spade.graph.has_edge("l2", "l0")
        assert spade.graph.has_edge("l2", "l1")

    def test_is_benign_uses_semantics_weighting(self, two_block_graph):
        spade = Spade(dg_semantics())
        spade.load_graph(dg_semantics().materialize([(u, v, w) for u, v, w in [("a", "b", 1), ("b", "c", 1)]]))
        # Under DG every edge weighs 1 regardless of the raw amount.
        assert spade.is_benign("x", "y", 1000.0) == spade.is_benign("x", "y", 1.0)


class TestListingTwoWorkflow:
    def test_paper_listing_2_equivalent_flow(self):
        """The FD workflow of Listing 2: plug-ins, load, detect, insert."""
        spade = Spade(fraudar_semantics(column_constant=5.0), edge_grouping=True)
        spade.load_edges(EDGES)
        fraudsters = spade.detect().vertices
        assert fraudsters
        for edge in [("u9", "u1", 1.0), ("u9", "u3", 1.0), ("u9", "u2", 1.0)]:
            community = spade.insert_edge(*edge)
        spade.flush_pending()
        assert spade.graph.has_vertex("u9")
