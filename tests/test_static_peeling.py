"""Unit tests for the static peeling algorithm (Algorithm 1)."""

from __future__ import annotations

import random

import pytest

from repro.peeling.guarantees import is_valid_peeling_sequence
from repro.peeling.result import PeelingResult, best_suffix, densities_from_weights
from repro.peeling.semantics import dg_semantics, dw_semantics, subset_density
from repro.peeling.static import peel, peel_subset, peeling_weights

from tests.helpers import random_weighted_edges


class TestPeelBasics:
    def test_triangle_plus_pendant(self, triangle_graph):
        result = peel(triangle_graph, "DW")
        assert result.community == frozenset({"a", "b", "c"})
        assert result.best_density == pytest.approx(1.0)
        # The pendant is peeled first because its weight (0.25) is smallest.
        assert result.order[0] == "d"

    def test_two_block_graph_prefers_heavy_clique(self, two_block_graph):
        result = peel(two_block_graph, "DW")
        assert {"h0", "h1", "h2", "h3"} <= set(result.community)
        assert not {"l1", "l2"} & set(result.community)

    def test_sequence_covers_all_vertices_once(self, random_graph):
        result = peel(random_graph)
        assert sorted(result.order, key=repr) == sorted(random_graph.vertices(), key=repr)
        assert len(set(result.order)) == len(result.order)

    def test_weights_telescope_to_total(self, random_graph):
        result = peel(random_graph)
        assert sum(result.weights) == pytest.approx(random_graph.total_suspiciousness())

    def test_sequence_is_valid_greedy_peel(self, random_graph):
        result = peel(random_graph)
        check = is_valid_peeling_sequence(random_graph, result.order, result.weights)
        assert check.valid, check.message

    def test_reported_density_matches_direct_evaluation(self, random_graph):
        result = peel(random_graph)
        assert result.best_density == pytest.approx(
            subset_density(random_graph, result.community)
        )

    def test_empty_graph(self):
        from repro.graph.graph import DynamicGraph

        result = peel(DynamicGraph())
        assert result.order == ()
        assert result.community == frozenset()

    def test_single_vertex(self):
        from repro.graph.graph import DynamicGraph

        graph = DynamicGraph(vertices=[("only", 2.0)])
        result = peel(graph)
        assert result.order == ("only",)
        assert result.best_density == pytest.approx(2.0)

    def test_isolated_vertices_excluded_from_community(self, dw):
        graph = dw.materialize([("a", "b", 5.0)])
        graph.add_vertex("iso1")
        graph.add_vertex("iso2")
        result = peel(graph, "DW")
        assert result.community == frozenset({"a", "b"})


class TestPeelSubset:
    def test_subset_restricted(self, two_block_graph):
        result = peel_subset(two_block_graph, {"l0", "l1", "l2"}, "DW")
        assert set(result.order) == {"l0", "l1", "l2"}
        assert result.best_density == pytest.approx(1.0)

    def test_subset_ignores_outside_edges(self, two_block_graph):
        # The bridge h0-l0 must not contribute when h0 is outside the subset.
        result = peel_subset(two_block_graph, {"l0", "l1", "l2"}, "DW")
        assert sum(result.weights) == pytest.approx(3.0)

    def test_subset_with_unknown_vertices(self, triangle_graph):
        result = peel_subset(triangle_graph, {"a", "b", "ghost"})
        assert set(result.order) == {"a", "b"}


class TestPeelingWeights:
    def test_full_set_weights(self, triangle_graph):
        weights = peeling_weights(triangle_graph)
        assert weights["d"] == pytest.approx(0.25)
        assert weights["a"] == pytest.approx(1.0 + 1.0 + 0.25)

    def test_subset_weights(self, triangle_graph):
        weights = peeling_weights(triangle_graph, {"a", "b"})
        assert weights["a"] == pytest.approx(1.0)
        assert weights["b"] == pytest.approx(1.0)


class TestDGvsDW:
    def test_dg_and_dw_agree_on_unweighted_input(self):
        rng = random.Random(5)
        edges = [(s, d, 1.0) for s, d, _w in random_weighted_edges(20, 50, rng)]
        dg_graph = dg_semantics().materialize(edges)
        dw_graph = dw_semantics().materialize(edges)
        dg_result = peel(dg_graph, "DG")
        dw_result = peel(dw_graph, "DW")
        assert dg_result.community == dw_result.community
        assert dg_result.best_density == pytest.approx(dw_result.best_density)


class TestResultHelpers:
    def test_densities_from_weights(self):
        densities = densities_from_weights(10.0, [1.0, 2.0, 3.0, 4.0])
        assert densities[0] == pytest.approx(10.0 / 4)
        assert densities[-1] == pytest.approx(4.0)

    def test_best_suffix_prefers_densest(self):
        # total=12, weights chosen so that the final 2 vertices are densest.
        k, density = best_suffix(12.0, [1.0, 1.0, 5.0, 5.0])
        assert k == 2
        assert density == pytest.approx(10.0 / 2)

    def test_best_suffix_empty(self):
        assert best_suffix(0.0, []) == (0, 0.0)

    def test_from_sequence_round_trip(self, random_graph):
        result = peel(random_graph)
        rebuilt = PeelingResult.from_sequence(
            result.order, result.weights, result.total_suspiciousness, "DW"
        )
        assert rebuilt.community == result.community
        assert rebuilt.best_index == result.best_index

    def test_result_validation(self):
        with pytest.raises(ValueError):
            PeelingResult(
                order=("a",),
                weights=(1.0, 2.0),
                total_suspiciousness=3.0,
                best_index=0,
                best_density=1.0,
                community=frozenset({"a"}),
            )

    def test_suffix_set_and_position(self, random_graph):
        result = peel(random_graph)
        k = result.best_index
        assert result.suffix_set(k) == result.community
        first = result.order[0]
        assert result.position_of(first) == 0
        with pytest.raises(KeyError):
            result.position_of("not-a-vertex")
        with pytest.raises(IndexError):
            result.suffix_set(len(result.order) + 1)

    def test_summary_mentions_semantics(self, random_graph):
        result = peel(random_graph, "DW")
        assert "DW" in result.summary()
