"""Durability tests: pool-faithful checkpoints, WAL replay, kill -9.

The recovery contract (ISSUE 5): after a crash, checkpoint + WAL-suffix
replay yields an engine whose ``detect()`` is bit-identical to an offline
:class:`~repro.api.SpadeClient` that applied every acknowledged event.
"""

from __future__ import annotations

import asyncio
import json
import random

import numpy as np
import pytest

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.api.events import Delete, InsertBatch
from repro.graph.backend import create_graph
from repro.graph.delta import EdgeUpdate
from repro.serve.app import ServeApp
from repro.serve.config import ServeConfig
from repro.serve.recovery import (
    CheckpointStore,
    edges_in_insertion_order,
    graph_from_snapshot,
    recover,
)
from repro.serve.wal import WriteAheadLog, read_ops

SNAPSHOT_FIELDS = (
    "order",
    "member",
    "vertex_weights",
    "out_offsets",
    "out_neighbors",
    "out_weights",
    "in_offsets",
    "in_neighbors",
    "in_weights",
)


@pytest.fixture(autouse=True)
def _single_backend_leg(graph_backend):
    if graph_backend != "array":
        pytest.skip("serve pins backend='array'; one leg is enough")


def random_dyadic_edges(seed: int, count: int, vertices: int = 40):
    rng = random.Random(seed)
    edges = []
    while len(edges) < count:
        src, dst = rng.randrange(vertices), rng.randrange(vertices)
        if src != dst:
            edges.append((f"v{src}", f"v{dst}", rng.randint(1, 128) / 32.0))
    return edges


class TestGraphReconstruction:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_rebuild_is_pool_bit_identical(self, seed):
        graph = create_graph("array")
        for src, dst, weight in random_dyadic_edges(seed, 500):
            graph.add_edge(src, dst, weight)
        snapshot = graph.freeze()
        rebuilt = graph_from_snapshot(snapshot, backend="array")
        resnap = rebuilt.freeze()
        for field in SNAPSHOT_FIELDS:
            original = getattr(snapshot, field)
            copy = getattr(resnap, field)
            assert original.shape == copy.shape, field
            assert np.array_equal(original, copy), field
        assert resnap.labels == snapshot.labels

    def test_merge_covers_every_edge(self):
        graph = create_graph("array")
        edges = random_dyadic_edges(3, 300)
        for src, dst, weight in edges:
            graph.add_edge(src, dst, weight)
        snapshot = graph.freeze()
        merged = list(edges_in_insertion_order(snapshot))
        assert len(merged) == snapshot.num_edges
        assert len({(src, dst) for src, dst, _ in merged}) == len(merged)


class TestCheckpointStore:
    def test_save_latest_prune(self, tmp_path):
        graph = create_graph("array")
        for src, dst, weight in random_dyadic_edges(5, 60):
            graph.add_edge(src, dst, weight)
        store = CheckpointStore(tmp_path, keep=2)
        for seq in (3, 6, 9):
            store.save(graph.freeze(), wal_seq=seq, wal_offset=seq * 100)
        latest = store.latest()
        assert latest is not None
        snapshot, meta = latest
        assert meta["wal_seq"] == 9
        assert meta["wal_offset"] == 900
        assert snapshot.num_edges == graph.freeze().num_edges
        # Only `keep` checkpoints remain on disk.
        assert len(list(tmp_path.glob("checkpoint-*.npz"))) == 2

    def test_payload_without_sidecar_ignored(self, tmp_path):
        graph = create_graph("array")
        graph.add_edge("a", "b", 1.0)
        store = CheckpointStore(tmp_path)
        store.save(graph.freeze(), wal_seq=2, wal_offset=10)
        # A stray payload with a higher seq but no sidecar (crash between
        # the two writes) must not win.
        (tmp_path / "checkpoint-000000000099.npz").write_bytes(b"junk")
        latest = store.latest()
        assert latest is not None
        assert latest[1]["wal_seq"] == 2


class TestRecoverInProcess:
    def test_checkpoint_plus_wal_suffix_equals_offline(self, tmp_path):
        config = EngineConfig(
            semantics="DW",
            backend="array",
            serve=ServeConfig(port=0, wal_dir=str(tmp_path), fsync=False),
        )
        edges = random_dyadic_edges(11, 90)
        ops = [
            InsertBatch(tuple(EdgeUpdate(s, d, w) for s, d, w in edges[i : i + 10]))
            for i in range(0, len(edges), 10)
        ]
        # Simulate a serving run: apply ops, checkpoint mid-way, WAL all.
        live = SpadeClient(config)
        live.load([])
        wal = WriteAheadLog(tmp_path, fsync=False)
        store = CheckpointStore(tmp_path)
        store.save(live.snapshot(), wal_seq=0, wal_offset=0)  # checkpoint zero
        checkpoint_at = 5
        for index, op in enumerate(ops, start=1):
            seq, offset = wal.append_op(op)
            live.apply([op])
            assert seq == index
            if index == checkpoint_at:
                store.save(live.snapshot(), wal_seq=seq, wal_offset=offset)
        wal.close()

        recovered = recover(config)
        assert recovered.from_checkpoint
        # Only the suffix past the mid-way checkpoint was replayed.
        assert recovered.replayed_ops == len(ops) - checkpoint_at
        assert recovered.wal_seq == len(ops)

        live_report = live.detect()
        recovered_report = recovered.client.detect()
        assert recovered_report.vertices == live_report.vertices
        assert recovered_report.density == live_report.density
        assert recovered_report.peel_index == live_report.peel_index

        # And equals a from-scratch offline replay of the full WAL.
        offline = SpadeClient(EngineConfig(semantics="DW", backend="array"))
        offline.load([])
        for _seq, op in read_ops(WriteAheadLog.path_in(tmp_path))[0]:
            offline.apply([op])
        offline_report = offline.detect()
        assert recovered_report.vertices == offline_report.vertices
        assert recovered_report.density == offline_report.density

    def test_recovery_with_deletes_replays_cleanly(self, tmp_path):
        config = EngineConfig(
            semantics="DW",
            backend="array",
            serve=ServeConfig(port=0, wal_dir=str(tmp_path), fsync=False),
        )
        edges = random_dyadic_edges(13, 40)
        live = SpadeClient(config)
        live.load([])
        wal = WriteAheadLog(tmp_path, fsync=False)
        store = CheckpointStore(tmp_path)
        store.save(live.snapshot(), wal_seq=0, wal_offset=0)
        ops = [
            InsertBatch(tuple(EdgeUpdate(s, d, w) for s, d, w in edges[:20])),
            Delete(tuple({(s, d) for s, d, _ in edges[:5]})),
            InsertBatch(tuple(EdgeUpdate(s, d, w) for s, d, w in edges[20:])),
        ]
        for op in ops:
            wal.append_op(op)
            live.apply([op])
        wal.close()
        recovered = recover(config)
        assert recovered.replayed_ops == 3
        live_report = live.detect()
        recovered_report = recovered.client.detect()
        assert recovered_report.vertices == live_report.vertices
        assert recovered_report.density == pytest.approx(live_report.density, abs=0.0)

    def test_restarted_app_resumes_wal_sequence(self, tmp_path):
        """A ServeApp restart continues seq numbering past the recovery."""

        config = EngineConfig(
            semantics="DW",
            backend="array",
            serve=ServeConfig(
                port=0, wal_dir=str(tmp_path / "wal"), fsync=False, max_delay_ms=1.0
            ),
        )

        async def run_once(rows):
            app = ServeApp(config)
            await app.start()
            try:
                future = app.gateway.submit(
                    "insert", [EdgeUpdate(s, d, w) for s, d, w in rows], len(rows)
                )
                assert future is not None
                return (await future), app.recovered_ops
            finally:
                await app.stop()

        result1, recovered1 = asyncio.run(run_once(random_dyadic_edges(1, 8)))
        result2, recovered2 = asyncio.run(run_once(random_dyadic_edges(2, 8)))
        assert recovered1 == 0
        assert recovered2 == 1  # the first run's single op was replayed
        assert result1["wal_seq"] == 1
        assert result2["wal_seq"] == 2


class TestTornTail:
    def test_restart_truncates_torn_tail_before_new_appends(self, tmp_path):
        """A kill -9 mid-append must not fuse the next record with the tear.

        Without truncation the restarted server appends past the torn
        fragment, producing one unparseable line that either drops an
        acknowledged record or makes every later restart fail.
        """
        config = EngineConfig(
            semantics="DW",
            backend="array",
            serve=ServeConfig(
                port=0, wal_dir=str(tmp_path / "wal"), fsync=False, max_delay_ms=1.0
            ),
        )

        async def run_once(rows):
            app = ServeApp(config)
            await app.start()
            try:
                future = app.gateway.submit(
                    "insert", [EdgeUpdate(s, d, w) for s, d, w in rows], len(rows)
                )
                assert future is not None
                return await future
            finally:
                await app.stop()

        asyncio.run(run_once(random_dyadic_edges(21, 6)))
        wal_path = WriteAheadLog.path_in(tmp_path / "wal")
        with wal_path.open("ab") as handle:
            handle.write(b'{"seq": 2, "kind": "ba')  # the kill -9 fragment

        ack = asyncio.run(run_once(random_dyadic_edges(22, 6)))
        assert ack["wal_seq"] == 2  # restart resumed numbering past op 1

        # Every record in the log parses, and a third recovery sees both.
        ops, _ = read_ops(wal_path)
        assert [seq for seq, _ in ops] == [1, 2]
        recovered = recover(config)
        assert recovered.wal_seq == 2
        assert recovered.replayed_ops == 2  # full suffix past checkpoint zero


class TestPoisonedOperations:
    """A durably-logged op the engine rejects must not crash-loop recovery."""

    def test_rejected_op_reports_error_and_recovery_survives(self, tmp_path):
        config = EngineConfig(
            semantics="DW",
            backend="array",
            serve=ServeConfig(
                port=0, wal_dir=str(tmp_path / "wal"), fsync=False, max_delay_ms=1.0
            ),
        )

        async def first_run():
            app = ServeApp(config)
            await app.start()
            try:
                good = app.gateway.submit(
                    "insert", [EdgeUpdate("a", "b", 2.0), EdgeUpdate("b", "c", 1.0)], 2
                )
                assert good is not None
                await good
                # A self loop is rejected at HTTP parse time, but the
                # gateway itself must survive one arriving anyway (direct
                # embedding use, or a future validation gap): the record
                # is durably logged, the engine rejects it, the submitter
                # learns, and recovery skips it identically.
                poisoned = app.gateway.submit(
                    "insert", [EdgeUpdate("loop", "loop", 1.0)], 1
                )
                assert poisoned is not None
                result = await poisoned
                assert "error" in result  # engine rejected, record durable
                after = app.gateway.submit("insert", [EdgeUpdate("c", "a", 3.0)], 1)
                assert after is not None
                ack = await after
                assert "error" not in ack  # later ops still commit
                return await app.service.detect()
            finally:
                await app.stop()

        live_detect = asyncio.run(first_run())
        # The WAL now contains the poisoned record; recovery must replay
        # past it and land on the identical state.
        recovered = recover(config)
        assert recovered.wal_seq == 3
        report = recovered.client.detect()
        assert sorted(map(str, report.vertices)) == live_detect["community"]
        assert report.density == live_detect["density"]

    def test_http_self_loop_rejected_before_wal(self, tmp_path):
        from tests.test_serve import drive, serve_config

        app = ServeApp(serve_config(tmp_path))
        results = drive(
            app,
            [
                ("POST", "/v1/edges", {"src": "x", "dst": "x", "weight": 1.0}),
                ("GET", "/healthz", None),
            ],
        )
        assert results[0][0] == 400
        assert "self loops" in results[0][1]["error"]
        # Nothing reached the WAL: the engine version never advanced.
        assert results[1][1]["version"] == 0


class TestKillMinusNine:
    def test_kill_and_restart_matches_offline_replay(self):
        """The full subprocess smoke: boot, ingest, SIGKILL, recover, diff."""
        from repro.serve.smoke import run_smoke

        assert run_smoke(events=220, checkpoint_interval=60, verbose=False) == 0
