"""Tests for dense-subgraph enumeration (Appendix C.2)."""

from __future__ import annotations

import pytest

from repro.core.enumeration import enumerate_communities, split_instances
from repro.core.state import PeelingState
from repro.graph.graph import DynamicGraph
from repro.peeling.semantics import dw_semantics


@pytest.fixture
def three_blocks(dw):
    """Three disjoint cliques of decreasing density plus background noise."""
    graph = DynamicGraph()
    blocks = {
        "A": (4, 6.0),
        "B": (4, 3.0),
        "C": (3, 1.5),
    }
    for name, (size, weight) in blocks.items():
        members = [f"{name}{i}" for i in range(size)]
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v, weight)
    graph.add_edge("A0", "B0", 0.25)
    graph.add_edge("B1", "C0", 0.25)
    graph.add_edge("noise1", "noise2", 0.1)
    return graph


class TestEnumerate:
    def test_instances_come_out_in_density_order(self, three_blocks):
        instances = enumerate_communities(three_blocks, max_instances=5, min_density=0.2)
        assert len(instances) >= 2
        densities = [inst.density for inst in instances]
        assert densities == sorted(densities, reverse=True)
        assert {"A0", "A1", "A2", "A3"} <= set(instances[0].vertices)

    def test_second_instance_is_second_block(self, three_blocks):
        instances = enumerate_communities(three_blocks, max_instances=5, min_density=0.2)
        assert {"B0", "B1", "B2", "B3"} <= set(instances[1].vertices)

    def test_max_instances_respected(self, three_blocks):
        instances = enumerate_communities(three_blocks, max_instances=1)
        assert len(instances) == 1

    def test_min_density_cutoff(self, three_blocks):
        instances = enumerate_communities(three_blocks, max_instances=10, min_density=5.0)
        assert len(instances) == 1

    def test_min_size_cutoff(self, three_blocks):
        instances = enumerate_communities(three_blocks, max_instances=10, min_size=3, min_density=0.0)
        assert all(len(inst) >= 3 for inst in instances)

    def test_accepts_peeling_state(self, three_blocks, dw):
        state = PeelingState(three_blocks, dw)
        instances = enumerate_communities(state, max_instances=3, min_density=0.2)
        assert instances[0].vertices == state.community().vertices

    def test_instances_are_disjoint(self, three_blocks):
        instances = enumerate_communities(three_blocks, max_instances=5, min_density=0.1)
        seen = set()
        for instance in instances:
            assert not (seen & instance.vertices)
            seen |= instance.vertices

    def test_ranks_are_sequential(self, three_blocks):
        instances = enumerate_communities(three_blocks, max_instances=5, min_density=0.1)
        assert [inst.rank for inst in instances] == list(range(len(instances)))

    def test_empty_graph(self):
        assert enumerate_communities(DynamicGraph()) == []


class TestSplitInstances:
    def test_split_connected_components(self, three_blocks):
        community = frozenset({"A0", "A1", "A2", "A3", "C0", "C1", "C2"})
        parts = split_instances(three_blocks, community)
        assert len(parts) == 2
        assert frozenset({"A0", "A1", "A2", "A3"}) in parts

    def test_split_single_component(self, three_blocks):
        parts = split_instances(three_blocks, frozenset({"A0", "A1"}))
        assert parts == [frozenset({"A0", "A1"})]

    def test_split_isolated_vertices(self, three_blocks):
        parts = split_instances(three_blocks, frozenset({"A0", "noise1"}))
        assert len(parts) == 2

    def test_split_empty(self, three_blocks):
        assert split_instances(three_blocks, frozenset()) == []

    def test_split_sorted_by_size(self, three_blocks):
        community = frozenset({"A0", "A1", "A2", "C0", "C1"})
        parts = split_instances(three_blocks, community)
        assert len(parts[0]) >= len(parts[-1])
