"""Tests for the serving subsystem: config, WAL, gateway, HTTP, isolation.

The subsystem pins its own backend (serving always freezes CSR snapshots,
so configs here say ``backend="array"`` explicitly); the suite-wide
backend parametrization is skipped for the duplicate leg.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.api.events import Delete, Flush, InsertBatch
from repro.errors import ConfigError, StorageError
from repro.graph.delta import EdgeUpdate
from repro.serve.app import ServeApp
from repro.serve.config import ServeConfig
from repro.serve.ingest import IngestGateway
from repro.serve.metrics import MetricsRegistry, SIZE_BUCKETS
from repro.serve.snapshots import SnapshotService
from repro.serve.wal import WriteAheadLog, decode_record, encode_op, read_ops


@pytest.fixture(autouse=True)
def _single_backend_leg(graph_backend):
    if graph_backend != "array":
        pytest.skip("serve pins backend='array'; one leg is enough")


def drive(app: ServeApp, requests):
    """Start ``app``, issue HTTP requests over one keep-alive connection."""

    async def _drive():
        await app.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", app.server.port
            )
            results = []
            for method, path, body in requests:
                payload = b"" if body is None else json.dumps(body).encode()
                head = (
                    f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                )
                writer.write(head.encode() + payload)
                await writer.drain()
                status_line = (await reader.readline()).decode()
                headers = {}
                while True:
                    line = (await reader.readline()).decode().strip()
                    if not line:
                        break
                    name, _, value = line.partition(":")
                    headers[name.lower()] = value.strip()
                data = await reader.readexactly(int(headers["content-length"]))
                body_out = (
                    json.loads(data)
                    if "json" in headers.get("content-type", "")
                    else data.decode()
                )
                results.append((int(status_line.split()[1]), body_out, headers))
            writer.close()
            return results
        finally:
            await app.stop()

    return asyncio.run(_drive())


def serve_config(tmp_path=None, **overrides) -> EngineConfig:
    knobs = {
        "port": 0,
        "wal_dir": str(tmp_path / "wal") if tmp_path is not None else None,
        "fsync": False,
        "max_delay_ms": 1.0,
    }
    knobs.update(overrides)
    return EngineConfig(semantics="DW", backend="array", serve=ServeConfig(**knobs))


class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig()
        assert config.port == 8080
        assert config.wal_dir is None

    @pytest.mark.parametrize(
        "bad",
        [
            {"port": -1},
            {"port": 70000},
            {"max_batch": 0},
            {"max_delay_ms": -0.1},
            {"queue_size": 0},
            {"checkpoint_interval": 0},
            {"max_body_bytes": 10},
            {"host": ""},
        ],
    )
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ConfigError):
            ServeConfig(**bad)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            ServeConfig.from_dict({"prot": 8080})

    def test_engine_config_nests_and_round_trips(self):
        config = EngineConfig(
            semantics="DW", serve=ServeConfig(port=9999, wal_dir="/tmp/x")
        )
        data = config.to_dict()
        assert data["serve"]["port"] == 9999
        rebuilt = EngineConfig.from_dict(json.loads(json.dumps(data)))
        assert rebuilt == config
        assert isinstance(rebuilt.serve, ServeConfig)

    def test_engine_config_coerces_serve_mapping(self):
        config = EngineConfig(serve={"port": 1234})
        assert isinstance(config.serve, ServeConfig)
        assert config.serve.port == 1234

    def test_engine_config_serve_none_round_trips(self):
        config = EngineConfig()
        assert config.serve is None
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_engine_config_rejects_bad_serve(self):
        with pytest.raises(ConfigError):
            EngineConfig(serve=42)


class TestWal:
    def test_encode_decode_round_trip(self):
        ops = [
            InsertBatch((EdgeUpdate("a", "b", 2.0), EdgeUpdate("b", "c", 1.5))),
            InsertBatch((EdgeUpdate("a", "c", 1.0, src_weight=0.5, dst_weight=None),)),
            Delete((("a", "b"),)),
            Flush(),
        ]
        for op in ops:
            record = json.loads(json.dumps(encode_op(op)))
            assert decode_record(record) == op

    def test_append_and_read_ops(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        seq1, off1 = wal.append_op(InsertBatch((EdgeUpdate("a", "b", 2.0),)))
        seq2, off2 = wal.append_op(Flush())
        wal.close()
        assert (seq1, seq2) == (1, 2)
        assert off2 > off1
        ops, next_offset = read_ops(WriteAheadLog.path_in(tmp_path))
        assert [seq for seq, _ in ops] == [1, 2]
        assert next_offset == off2
        # Suffix read from a mid-log offset.
        suffix, _ = read_ops(WriteAheadLog.path_in(tmp_path), off1)
        assert [seq for seq, _ in suffix] == [2]
        assert suffix[0][1] == Flush()

    def test_sequence_survives_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            wal.append_op(Flush())
        with WriteAheadLog(tmp_path, fsync=False, next_seq=2) as wal:
            seq, _ = wal.append_op(Flush())
        assert seq == 2
        ops, _ = read_ops(WriteAheadLog.path_in(tmp_path))
        assert [seq for seq, _ in ops] == [1, 2]

    def test_torn_final_line_ignored(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            wal.append_op(Flush())
        path = WriteAheadLog.path_in(tmp_path)
        with path.open("ab") as handle:
            handle.write(b'{"seq": 2, "kind": "fl')  # torn mid-append
        ops, next_offset = read_ops(path)
        assert [seq for seq, _ in ops] == [1]
        # The resume offset excludes the torn tail.
        assert next_offset < path.stat().st_size

    def test_regressing_sequence_rejected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"seq": 5, "kind": "flush"}\n{"seq": 4, "kind": "flush"}\n')
        with pytest.raises(StorageError):
            read_ops(path)


class TestMetrics:
    def test_render_prometheus_text(self):
        registry = MetricsRegistry()
        counter = registry.counter("test_total", "a counter")
        gauge = registry.gauge("test_depth", "a gauge")
        histogram = registry.histogram("test_seconds", "a histogram", SIZE_BUCKETS)
        counter.inc()
        counter.inc(2)
        gauge.set(7)
        histogram.observe(3)
        histogram.observe(100)
        text = registry.render()
        assert "# TYPE test_total counter" in text
        assert "test_total 3" in text
        assert "test_depth 7" in text
        assert 'test_seconds_bucket{le="4"} 1' in text
        assert 'test_seconds_bucket{le="+Inf"} 2' in text
        assert "test_seconds_count 2" in text

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x_total", "x").inc(-1)

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dup_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("dup_total", "y")


class TestGatewayCoalescing:
    def _gateway(self, client, config):
        lock = asyncio.Lock()
        service = SnapshotService(client, lock)
        registry = MetricsRegistry()
        return IngestGateway(client, service, lock, config, registry), service

    def test_consecutive_inserts_coalesce_one_batch(self):
        async def scenario():
            client = SpadeClient(EngineConfig(semantics="DW", backend="array"))
            client.load([])
            config = ServeConfig(port=0, max_batch=64, max_delay_ms=20.0, queue_size=16)
            gateway, service = self._gateway(client, config)
            gateway.start()
            futures = [
                gateway.submit("insert", [EdgeUpdate(f"u{i}", f"v{i}", 1.0)], 1)
                for i in range(5)
            ]
            results = await asyncio.gather(*futures)
            await gateway.stop()
            return results, service.version

        results, version = asyncio.run(scenario())
        # All five submissions commit as one coalesced operation: one WAL
        # seq, shared by every ack.
        assert {result["wal_seq"] for result in results} == {1}
        assert version == 1

    def test_delete_is_a_barrier(self):
        async def scenario():
            client = SpadeClient(EngineConfig(semantics="DW", backend="array"))
            client.load([("a", "b", 2.0), ("b", "c", 1.0)])
            config = ServeConfig(port=0, max_batch=64, max_delay_ms=20.0, queue_size=16)
            gateway, service = self._gateway(client, config)
            # Enqueue before starting the writer so the whole sequence is
            # one window: insert, delete (barrier), insert.
            loop = asyncio.get_running_loop()
            assert loop is not None
            f1 = gateway.submit("insert", [EdgeUpdate("x", "y", 1.0)], 1)
            f2 = gateway.submit("delete", [("a", "b")], 1)
            f3 = gateway.submit("insert", [EdgeUpdate("y", "z", 1.0)], 1)
            gateway.start()
            r1, r2, r3 = await asyncio.gather(f1, f2, f3)
            await gateway.stop()
            return r1, r2, r3

        r1, r2, r3 = asyncio.run(scenario())
        assert r1["wal_seq"] == 1
        assert r2["wal_seq"] == 2
        assert r3["wal_seq"] == 3

    def test_backpressure_returns_none_when_full(self):
        async def scenario():
            client = SpadeClient(EngineConfig(semantics="DW", backend="array"))
            client.load([])
            config = ServeConfig(port=0, queue_size=2, max_delay_ms=1.0)
            gateway, _service = self._gateway(client, config)
            # Writer not started: the queue fills and stays full.
            futures = [
                gateway.submit("insert", [EdgeUpdate("a", "b", 1.0)], 1)
                for _ in range(3)
            ]
            return futures

        futures = asyncio.run(scenario())
        assert futures[0] is not None and futures[1] is not None
        assert futures[2] is None


class TestHttpSurface:
    def test_endpoints_end_to_end(self, tmp_path):
        app = ServeApp(serve_config(tmp_path))
        results = drive(
            app,
            [
                ("GET", "/healthz", None),
                ("POST", "/v1/edges", {"src": "a", "dst": "b", "weight": 2.0}),
                ("POST", "/v1/edges", {"edges": [["a", "c", 1.5], ["c", "b", 1.0], ["b", "a", 3.0]]}),
                ("GET", "/v1/detect", None),
                ("GET", "/v1/communities?limit=5", None),
                ("GET", "/v1/vertices/a", None),
                ("GET", "/v1/vertices/nope", None),
                ("POST", "/v1/edges", {"op": "delete", "edges": [["a", "b"]]}),
                ("POST", "/v1/flush", None),
                ("GET", "/metrics", None),
                ("GET", "/v1/unknown", None),
                ("POST", "/v1/detect", None),
            ],
        )
        (health, single, bulk, detect, communities, vertex, missing,
         delete, flush, metrics, unknown, wrong_method) = results
        assert health[0] == 200 and health[1]["status"] == "ok"
        assert single[0] == 200 and single[1]["accepted"] == 1
        assert bulk[0] == 200 and bulk[1]["accepted"] == 3
        assert detect[0] == 200
        assert detect[1]["community"] == ["a", "b", "c"]
        assert detect[1]["version"] == bulk[1]["version"]
        assert communities[0] == 200 and communities[1]["count"] == 1
        assert communities[1]["communities"][0]["vertices"] == ["a", "b", "c"]
        assert vertex[0] == 200 and vertex[1]["out_degree"] == 2
        assert missing[0] == 404
        assert delete[0] == 200 and delete[1]["edges"] == 1
        assert flush[0] == 200
        assert metrics[0] == 200
        assert "repro_ingest_events_accepted_total" in metrics[1]
        assert unknown[0] == 404
        assert wrong_method[0] == 405

    def test_bad_requests_rejected(self, tmp_path):
        app = ServeApp(serve_config(tmp_path))
        results = drive(
            app,
            [
                ("POST", "/v1/edges", {"src": "a"}),                      # missing dst
                ("POST", "/v1/edges", {"src": "a", "dst": "b", "weight": -1}),
                ("POST", "/v1/edges", {"edges": []}),
                ("POST", "/v1/edges", {"edges": [["a", "b", 1, 2, 3]]}),
                ("POST", "/v1/edges", {"src": "a", "dst": "a"}),          # self loop
                ("POST", "/v1/edges", {"src": {"o": 1}, "dst": "b"}),     # object label
                ("POST", "/v1/edges", {"src": None, "dst": "b"}),
                ("POST", "/v1/edges", {"src": "a", "dst": "b", "src_prior": "oops"}),
                ("POST", "/v1/edges", {"src": "a", "dst": "b", "dst_prior": -2}),
                ("POST", "/v1/edges", {"op": "delete", "edges": [[["x"], "b"]]}),
                ("GET", "/v1/communities?limit=abc", None),
                ("GET", "/v1/communities?limit=0", None),
            ],
        )
        assert [status for status, _, _ in results] == [400] * 12

    def test_backpressure_answers_429_with_retry_after(self, tmp_path):
        config = serve_config(tmp_path, queue_size=1, max_batch=1, max_delay_ms=0.0)
        app = ServeApp(config)

        async def scenario():
            await app.start()
            try:
                # Stall the writer by holding the writer lock: the first
                # submission gets picked up and blocks on the lock, the
                # second fills the queue, so the HTTP post must get 429
                # (the 429 path never touches the lock).
                async with app.service._lock:  # noqa: SLF001 - test hook
                    first = app.gateway.submit("insert", [EdgeUpdate("a", "b", 1.0)], 1)
                    assert first is not None
                    await asyncio.sleep(0.05)  # writer now blocked on the lock
                    second = app.gateway.submit("insert", [EdgeUpdate("b", "c", 1.0)], 1)
                    assert second is not None  # sits in the (now full) queue
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", app.server.port
                    )
                    payload = json.dumps({"src": "x", "dst": "y"}).encode()
                    writer.write(
                        (
                            f"POST /v1/edges HTTP/1.1\r\nHost: t\r\n"
                            f"Content-Length: {len(payload)}\r\n\r\n"
                        ).encode()
                        + payload
                    )
                    await writer.drain()
                    status_line = (await reader.readline()).decode()
                    headers = {}
                    while True:
                        line = (await reader.readline()).decode().strip()
                        if not line:
                            break
                        name, _, value = line.partition(":")
                        headers[name.lower()] = value.strip()
                    await reader.readexactly(int(headers["content-length"]))
                    writer.close()
                    return int(status_line.split()[1]), headers, first
            finally:
                await app.stop()

        status, headers, first = asyncio.run(scenario())
        assert status == 429
        assert "retry-after" in headers


def _offline_prefix_report(ops, version):
    """Fresh engine replayed through the first ``version`` WAL ops."""
    offline = SpadeClient(EngineConfig(semantics="DW", backend="array"))
    offline.load([])
    for seq, op in ops:
        if seq > version:
            break
        offline.apply([op])
    return offline


class TestSnapshotIsolation:
    """Satellite: concurrent readers see internally consistent versions."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_concurrent_reads_match_offline_replay_at_version(self, seed, tmp_path_factory):
        import random

        tmp_path = tmp_path_factory.mktemp("serve-isolation")
        rng = random.Random(seed)
        edges = []
        while len(edges) < 60:
            src, dst = rng.randrange(14), rng.randrange(14)
            if src != dst:
                # Dyadic weights: float sums are exact, so equality with
                # the offline replay is strict.
                edges.append((f"v{src}", f"v{dst}", rng.randint(1, 64) / 16.0))

        app = ServeApp(serve_config(tmp_path, max_batch=8))
        responses = []

        async def writer_task():
            for index in range(0, len(edges), 3):
                chunk = [EdgeUpdate(s, d, w) for s, d, w in edges[index : index + 3]]
                future = app.gateway.submit("insert", chunk, len(chunk))
                assert future is not None
                await future

        async def reader_task():
            while not writer_done.is_set():
                detect = await app.service.detect()
                communities = await app.service.communities(limit=3)
                responses.append((detect, communities))
                await asyncio.sleep(0)

        writer_done = asyncio.Event()

        async def scenario():
            await app.start()
            try:
                readers = [asyncio.create_task(reader_task()) for _ in range(2)]
                await writer_task()
                writer_done.set()
                await asyncio.gather(*readers)
                responses.append(
                    (await app.service.detect(), await app.service.communities(limit=3))
                )
            finally:
                await app.stop()

        asyncio.run(scenario())
        ops, _ = read_ops(WriteAheadLog.path_in(tmp_path / "wal"))

        seen_versions = set()
        for detect, communities in responses:
            version = detect["version"]
            # Internal consistency: both halves of a response pair carry a
            # published version, and detect/communities agree when taken
            # from the same snapshot.
            assert communities["version"] <= max(seq for seq, _ in ops) if ops else True
            if version in seen_versions:
                continue
            seen_versions.add(version)
            offline = _offline_prefix_report(ops, version)
            report = offline.detect()
            assert detect["community"] == sorted(map(str, report.vertices))
            assert detect["density"] == report.density
            assert detect["peel_index"] == report.peel_index
            if communities["version"] == version:
                offline_instances = offline.communities(max_instances=3)
                assert [c["vertices"] for c in communities["communities"]] == [
                    sorted(map(str, instance.vertices))
                    for instance in offline_instances
                ]
                assert [c["density"] for c in communities["communities"]] == [
                    instance.density for instance in offline_instances
                ]
        # The final read reflects the fully applied stream.
        final_detect, _final_communities = responses[-1]
        assert final_detect["version"] == max(seq for seq, _ in ops)
