"""Unit tests for graph deltas, induced-subgraph views and statistics."""

from __future__ import annotations

import pytest

from repro.graph.delta import EdgeUpdate, GraphDelta, apply_delta
from repro.graph.graph import DynamicGraph
from repro.graph.stats import compute_stats, degree_distribution
from repro.graph.views import induced_subgraph


class TestEdgeUpdate:
    def test_edge_property(self):
        update = EdgeUpdate("a", "b", 2.0)
        assert update.edge == ("a", "b")
        assert not update.delete

    def test_reversed(self):
        update = EdgeUpdate("a", "b", 2.0, src_weight=1.0, dst_weight=0.5)
        rev = update.reversed()
        assert rev.src == "b" and rev.dst == "a"
        assert rev.src_weight == 0.5 and rev.dst_weight == 1.0


class TestGraphDelta:
    def test_add_and_iterate(self):
        delta = GraphDelta()
        delta.add_edge("a", "b")
        delta.add(EdgeUpdate("b", "c", 2.0))
        assert len(delta) == 2
        assert [u.edge for u in delta] == [("a", "b"), ("b", "c")]

    def test_insertions_and_deletions_split(self):
        delta = GraphDelta()
        delta.add_edge("a", "b")
        delta.add(EdgeUpdate("b", "c", delete=True))
        assert [u.edge for u in delta.insertions()] == [("a", "b")]
        assert [u.edge for u in delta.deletions()] == [("b", "c")]

    def test_touched_vertices_order_and_dedup(self):
        delta = GraphDelta()
        delta.add_vertex("x", 1.0)
        delta.add_edge("a", "b")
        delta.add_edge("b", "x")
        assert delta.touched_vertices() == ["x", "a", "b"]

    def test_from_edges(self):
        delta = GraphDelta.from_edges([("a", "b"), ("b", "c", 2.0)])
        assert len(delta) == 2
        assert delta.updates[1].weight == 2.0

    def test_apply_delta_inserts(self):
        graph = DynamicGraph.from_edges([("a", "b", 1.0)])
        delta = GraphDelta.from_edges([("b", "c", 2.0)])
        delta.add_vertex("iso", 0.5)
        apply_delta(graph, delta)
        assert graph.has_edge("b", "c")
        assert graph.vertex_weight("iso") == 0.5

    def test_apply_delta_deletes(self):
        graph = DynamicGraph.from_edges([("a", "b", 1.0), ("b", "c", 2.0)])
        delta = GraphDelta(updates=[EdgeUpdate("a", "b", delete=True)])
        apply_delta(graph, delta)
        assert not graph.has_edge("a", "b")
        assert graph.has_edge("b", "c")

    def test_apply_delta_carries_vertex_priors(self):
        graph = DynamicGraph()
        delta = GraphDelta(updates=[EdgeUpdate("a", "b", 1.0, src_weight=2.0)])
        apply_delta(graph, delta)
        assert graph.vertex_weight("a") == 2.0


class TestInducedSubgraph:
    @pytest.fixture
    def graph(self) -> DynamicGraph:
        graph = DynamicGraph()
        graph.add_vertex("a", 1.0)
        graph.add_edge("a", "b", 2.0)
        graph.add_edge("b", "c", 3.0)
        graph.add_edge("c", "d", 4.0)
        return graph

    def test_edges_restricted_to_subset(self, graph):
        view = induced_subgraph(graph, {"a", "b", "c"})
        assert sorted(e[:2] for e in view.edges()) == [("a", "b"), ("b", "c")]
        assert view.num_edges() == 2

    def test_density_matches_equation_1(self, graph):
        view = induced_subgraph(graph, {"a", "b"})
        # f(S) = a_a + c_ab = 1 + 2 ; |S| = 2
        assert view.total_suspiciousness() == pytest.approx(3.0)
        assert view.density() == pytest.approx(1.5)

    def test_empty_subset_density_zero(self, graph):
        view = induced_subgraph(graph, set())
        assert view.density() == 0.0

    def test_materialize(self, graph):
        sub = induced_subgraph(graph, {"b", "c"}).materialize()
        assert sub.num_vertices() == 2
        assert sub.has_edge("b", "c")
        assert not sub.has_edge("a", "b")

    def test_view_reflects_parent_mutation(self, graph):
        view = induced_subgraph(graph, {"a", "b"})
        before = view.total_edge_weight()
        graph.add_edge("a", "b", 1.0)
        assert view.total_edge_weight() == pytest.approx(before + 1.0)


class TestStats:
    def test_compute_stats_counts(self, random_graph):
        stats = compute_stats(random_graph)
        assert stats.num_vertices == random_graph.num_vertices()
        assert stats.num_edges == random_graph.num_edges()
        assert stats.avg_degree == pytest.approx(
            2 * stats.num_edges / stats.num_vertices
        )
        assert stats.max_degree >= 1
        row = stats.as_row()
        assert row["|V|"] == stats.num_vertices

    def test_empty_graph_stats(self):
        stats = compute_stats(DynamicGraph())
        assert stats.num_vertices == 0
        assert stats.avg_degree == 0.0

    def test_degree_distribution_sums_to_vertex_count(self, random_graph):
        dist = degree_distribution(random_graph)
        assert sum(dist.frequencies) == random_graph.num_vertices()
        assert list(dist.degrees) == sorted(dist.degrees)

    def test_degree_distribution_tail_mass(self):
        graph = DynamicGraph()
        for i in range(10):
            graph.add_edge(f"leaf{i}", "hub", 1.0)
        dist = degree_distribution(graph)
        assert dist.tail_mass(10) == pytest.approx(1 / 11)
        assert dist.tail_mass(1) == 1.0

    def test_power_law_exponent_negative_for_star_heavy_graph(self, tiny_grab_dataset, dw):
        graph = tiny_grab_dataset.initial_graph(dw)
        dist = degree_distribution(graph)
        assert dist.power_law_exponent() < -0.5
