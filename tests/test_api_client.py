"""SpadeClient behaviour tests + the apply-vs-legacy differential suite.

The central guarantee of the v1 façade: feeding a typed event stream
through :meth:`SpadeClient.apply` leaves the engine in a state
*bit-identical* to the equivalent sequence of legacy method calls
(``insert_edge`` / ``insert_batch_edges`` / ``delete_edges`` /
``flush_pending``), across backends and shard counts.
"""

from __future__ import annotations

import pytest

from repro.api import (
    Delete,
    DetectionReport,
    EngineConfig,
    Flush,
    Insert,
    InsertBatch,
    SpadeClient,
)
from repro.errors import StateError

INITIAL = [
    ("u1", "u2", 2.0),
    ("u2", "u3", 1.0),
    ("u1", "u3", 4.0),
    ("u3", "u4", 2.0),
    ("u4", "u5", 2.0),
    ("u5", "u1", 3.0),
]

#: A mixed script exercising every event kind; weights are dyadic so
#: every arithmetic path is exactly reproducible.
SCRIPT = [
    Insert("u6", "u1", 2.5),
    Insert("u2", "u6", 1.25),
    InsertBatch.of([("u7", "u6", 3.0), ("u6", "u7", 1.5), ("u1", "u7", 2.0)]),
    Delete.of([("u1", "u2"), ("u3", "u4")]),
    Insert("u7", "u2", 4.0),
    Flush(),
    InsertBatch.of([("u8", "u7", 2.0), ("u8", "u6", 2.0)]),
    Delete.of([("u5", "u1")]),
    Insert("u8", "u1", 0.5),
    Flush(),
]


def _legacy_replay(engine, event):
    """Apply one event exactly the way pre-façade consumers did."""
    if isinstance(event, Insert):
        return engine.insert_edge(
            event.src,
            event.dst,
            event.weight,
            timestamp=event.timestamp,
            src_prior=event.src_prior,
            dst_prior=event.dst_prior,
        )
    if isinstance(event, InsertBatch):
        return engine.insert_batch_edges(event.updates)
    if isinstance(event, Delete):
        return engine.delete_edges(event.edges)
    return engine.flush_pending()


def _results_identical(a, b):
    assert list(a.order) == list(b.order)
    assert list(a.weights) == list(b.weights)
    assert a.total_suspiciousness == b.total_suspiciousness
    assert a.best_density == b.best_density
    assert a.community == b.community


class TestApplyVsLegacyDifferential:
    @pytest.mark.parametrize("backend", ["dict", "array"])
    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("algo", ["DW", "FD"])
    def test_apply_is_bit_identical_to_legacy_calls(self, backend, shards, algo):
        config = EngineConfig(
            semantics=algo, backend=backend, shards=shards, coordinator_interval=4
        )
        legacy = config.build()
        legacy.load_edges(INITIAL)
        client = SpadeClient(config)
        client.load(INITIAL)

        for event in SCRIPT:
            expected = _legacy_replay(legacy, event)
            report = client.apply([event])
            # Same per-event community view (exact for 1 shard, the
            # shard-local lower bound for 4 — identical either way).
            assert report.community == expected

        # Identical merged detection and full peeling state afterwards.
        assert client.detect().community == legacy.detect()
        _results_identical(client.detect(include_result=True).result, legacy.result())

    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_one_apply_call_equals_event_by_event(self, backend):
        config = EngineConfig(semantics="DW", backend=backend)
        one_call = SpadeClient(config)
        one_call.load(INITIAL)
        stepped = SpadeClient(config)
        stepped.load(INITIAL)

        final = one_call.apply(SCRIPT)
        for event in SCRIPT:
            last = stepped.apply([event])
        assert final.community == last.community
        _results_identical(
            one_call.detect(include_result=True).result,
            stepped.detect(include_result=True).result,
        )

    def test_edge_grouping_parity(self, two_block_graph, dw):
        """Grouping engines defer identically under apply and legacy calls."""
        config = EngineConfig(semantics="DW", edge_grouping=True)
        legacy = config.build()
        legacy.load_graph(two_block_graph)
        client = SpadeClient(config)
        client.load(dw.materialize(
            [(u, v, w) for u, v, w in two_block_graph.edges()]
        ))

        # The first edge is benign (deferred), the second urgent (flushes).
        script = [Insert("l2", "l0", 0.05), Insert("h0", "h2", 9.0), Flush()]
        for event in script:
            expected = _legacy_replay(legacy, event)
            report = client.apply([event])
            assert report.community == expected
            assert client.pending_edges() == legacy.pending_edges()
        assert legacy.pending_edges() == 0


class TestSingleBareEvent:
    """``apply`` takes a single bare event, not only iterables of them.

    The serving layer's single-edge endpoint leans on this ergonomics
    (``client.apply(Insert(...))``), so it is pinned here per event kind.
    """

    def test_apply_single_insert(self):
        client = SpadeClient(EngineConfig(semantics="DW"))
        client.load(INITIAL)
        report = client.apply(Insert("u1", "u6", 3.0))
        assert report.events == 1
        assert report.edges_applied == 1
        assert report.outcomes[0].kind == "insert"
        assert client.graph.has_edge("u1", "u6")

    def test_apply_single_matches_listed(self):
        bare = SpadeClient(EngineConfig(semantics="DW"))
        listed = SpadeClient(EngineConfig(semantics="DW"))
        bare.load(INITIAL)
        listed.load(INITIAL)
        report_bare = bare.apply(Insert("u2", "u5", 2.5))
        report_listed = listed.apply([Insert("u2", "u5", 2.5)])
        assert report_bare.vertices == report_listed.vertices
        assert report_bare.density == report_listed.density

    def test_apply_single_batch_delete_flush(self):
        client = SpadeClient(EngineConfig(semantics="DW"))
        client.load(INITIAL)
        batch_report = client.apply(InsertBatch.of([("a", "b", 1.0), ("b", "c", 2.0)]))
        assert batch_report.outcomes[0].kind == "insert_batch"
        delete_report = client.apply(Delete.of([("a", "b")]))
        assert delete_report.outcomes[0].kind == "delete"
        flush_report = client.apply(Flush())
        assert flush_report.outcomes[0].kind == "flush"

    def test_apply_single_bare_tuple(self):
        client = SpadeClient(EngineConfig(semantics="DW"))
        client.load(INITIAL)
        report = client.apply(("u4", "u1", 1.5))
        assert report.edges_applied == 1
        assert client.graph.has_edge("u4", "u1")


class TestClientLifecycle:
    def test_load_edges_returns_full_report(self):
        client = SpadeClient(EngineConfig(semantics="DW"))
        report = client.load(INITIAL)
        assert isinstance(report, DetectionReport)
        assert report.result is not None
        assert report.exact
        assert report.vertices == client.detect().vertices

    def test_load_graph_adopts(self):
        config = EngineConfig(semantics="DW")
        graph = config.semantics_instance().materialize(INITIAL)
        client = SpadeClient(config)
        client.load(graph)
        assert client.graph is graph

    def test_load_with_priors(self):
        client = SpadeClient(EngineConfig(semantics="FD"))
        client.load(INITIAL, vertex_priors={"u1": 2.0})
        assert client.graph.vertex_weight("u1") == 2.0

    def test_priors_rejected_for_graph_source(self):
        config = EngineConfig(semantics="DW")
        graph = config.semantics_instance().materialize(INITIAL)
        with pytest.raises(TypeError):
            SpadeClient(config).load(graph, vertex_priors={"u1": 1.0})

    def test_detect_before_load_raises(self):
        with pytest.raises(StateError):
            SpadeClient().detect()

    def test_context_manager_flushes_on_exit(self, two_block_graph):
        with SpadeClient(EngineConfig(semantics="DW", edge_grouping=True)) as client:
            client.load(two_block_graph)
            client.apply([Insert("l2", "l0", 0.05)])
            assert client.pending_edges() == 1
            assert not client.graph.has_edge("l2", "l0")
        assert client.pending_edges() == 0
        assert client.graph.has_edge("l2", "l0")

    def test_context_manager_safe_before_load(self):
        with SpadeClient() as client:
            assert client.shards == 1

    def test_mapping_config_and_overrides(self):
        client = SpadeClient({"semantics": "DW"}, backend="array")
        assert client.config == EngineConfig(semantics="DW", backend="array")

    def test_detector_rejects_config_plus_legacy_knobs(self):
        from repro.pipeline.detector import RealTimeSpadeDetector
        from repro.pipeline.pipeline import FraudDetectionPipeline

        config = EngineConfig(semantics="DW")
        graph = config.semantics_instance().materialize(INITIAL)
        with pytest.raises(TypeError, match="shards"):
            RealTimeSpadeDetector(
                config.semantics_instance(), graph, shards=4, config=config
            )
        with pytest.raises(TypeError, match="backend"):
            FraudDetectionPipeline(detector="spade", backend="array", config=config)

    def test_wrap_adopts_engine(self):
        config = EngineConfig(semantics="DW", backend="array", shards=2)
        engine = config.build()
        engine.load_edges(INITIAL)
        client = SpadeClient.wrap(engine)
        assert client.engine is engine
        assert client.shards == 2
        assert client.config.backend == "array"
        assert client.config.semantics == "DW"


class TestReports:
    def test_apply_outcomes_per_event(self):
        client = SpadeClient(EngineConfig(semantics="DW"))
        client.load(INITIAL)
        report = client.apply(SCRIPT)
        assert report.events == len(SCRIPT)
        assert [o.kind for o in report.outcomes] == [
            "insert",
            "insert",
            "insert_batch",
            "delete",
            "insert",
            "flush",
            "insert_batch",
            "delete",
            "insert",
            "flush",
        ]
        assert report.edges_applied == 3 + 3 + 3 + 2 + 1  # inserts+batches+deletes
        assert report.affected_area == sum(o.stats.affected_area for o in report.outcomes)
        assert report.elapsed_seconds >= 0.0

    def test_report_provenance(self):
        client = SpadeClient(EngineConfig(semantics="FD", backend="array", shards=2))
        client.load(INITIAL)
        report = client.apply([Insert("u9", "u1", 1.0)])
        assert report.semantics == "FD"
        assert report.backend == "array"
        assert report.shards == 2
        assert not report.exact
        assert client.detect().exact

    def test_empty_apply_is_cheap_view(self):
        client = SpadeClient(EngineConfig(semantics="DW"))
        client.load(INITIAL)
        report = client.apply([])
        assert report.events == 0
        assert report.vertices == client.detect().vertices

    def test_empty_apply_does_not_flush_deferred_edges(self, two_block_graph):
        client = SpadeClient(EngineConfig(semantics="DW", edge_grouping=True))
        client.load(two_block_graph)
        client.apply([Insert("l2", "l0", 0.05)])
        assert client.pending_edges() == 1
        client.apply([])
        assert client.pending_edges() == 1
        assert not client.graph.has_edge("l2", "l0")

    def test_report_to_dict_and_contains(self):
        client = SpadeClient(EngineConfig(semantics="DW"))
        report = client.load(INITIAL)
        payload = report.to_dict()
        assert payload["semantics"] == "DW"
        assert payload["density"] == report.density
        assert sorted(report.vertices)[0] in report

    def test_communities_matches_engine_enumeration(self):
        client = SpadeClient(EngineConfig(semantics="DW"))
        client.load(INITIAL)
        instances = client.communities(max_instances=2, min_density=0.1)
        assert instances
        assert instances[0].vertices == client.detect().vertices


class TestSnapshot:
    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_snapshot_reflects_detect_view(self, backend):
        client = SpadeClient(EngineConfig(semantics="DW", backend=backend))
        client.load(INITIAL)
        client.apply([Insert("u6", "u1", 2.0)])
        snapshot = client.snapshot()
        assert snapshot.num_vertices == client.graph.num_vertices()
        assert snapshot.num_edges == client.graph.num_edges()

    def test_sharded_snapshot_is_global_mirror(self):
        client = SpadeClient(EngineConfig(semantics="DW", backend="array", shards=4))
        client.load(INITIAL)
        client.apply([Insert("u6", "u1", 2.0)])
        snapshot = client.snapshot()
        assert snapshot.num_edges == client.graph.num_edges()


class TestReprs:
    def test_spade_repr_mentions_backend_and_sizes(self):
        config = EngineConfig(semantics="DW", backend="array")
        engine = config.build()
        assert "unloaded" in repr(engine)
        engine.load_edges(INITIAL)
        text = repr(engine)
        assert "backend=array" in text
        assert "|V|=5" in text and "|E|=6" in text

    def test_sharded_repr_mentions_shards_and_sizes(self):
        engine = EngineConfig(semantics="DW", backend="array", shards=3).build()
        engine.load_edges(INITIAL)
        text = repr(engine)
        assert "shards=3" in text
        assert "backend=array" in text
        assert "|V|=5" in text and "|E|=6" in text

    def test_csr_snapshot_repr(self):
        client = SpadeClient(EngineConfig(semantics="DW", backend="array"))
        client.load(INITIAL)
        text = repr(client.snapshot())
        assert "|V|=5" in text and "|E|=6" in text and "version=" in text

    def test_client_repr_mentions_config(self):
        assert "EngineConfig" in repr(SpadeClient())
