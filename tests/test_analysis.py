"""Tests for the analysis layer (community matching, case studies, enumeration)."""

from __future__ import annotations

import pytest

from repro.analysis.casestudy import run_case_study
from repro.analysis.communities import best_match, match_communities
from repro.analysis.enumeration import enumerate_over_time
from repro.peeling.semantics import dw_semantics
from repro.workloads.fraud import PATTERN_COLLUSION


class TestCommunityMatch:
    def test_metrics(self):
        matches = match_communities({"a", "b", "c"}, {"x": {"b", "c", "d", "e"}})
        match = matches["x"]
        assert match.overlap == 2
        assert match.precision == pytest.approx(2 / 3)
        assert match.recall == pytest.approx(0.5)
        assert match.f1 == pytest.approx(2 * (2 / 3) * 0.5 / ((2 / 3) + 0.5))
        assert match.jaccard == pytest.approx(2 / 5)

    def test_empty_sets(self):
        match = match_communities(set(), {"x": set()})["x"]
        assert match.precision == 0.0 and match.recall == 0.0 and match.f1 == 0.0

    def test_best_match_picks_highest_f1(self):
        truth = {"good": {"a", "b"}, "bad": {"z"}}
        assert best_match({"a", "b"}, truth).label == "good"
        assert best_match({"a"}, {}) is None


class TestCaseStudy:
    def test_collusion_case_study(self, tiny_grab_dataset):
        label = next(
            c.label for c in tiny_grab_dataset.fraud_communities if c.pattern == PATTERN_COLLUSION
        )
        study = run_case_study(tiny_grab_dataset, label, dw_semantics(), static_period=30.0)
        assert study.pattern == PATTERN_COLLUSION
        assert study.incremental_detection is not None
        assert study.incremental_delay >= 0.0
        # The real-time detector cannot be slower than the periodic baseline.
        if study.static_detection is not None:
            assert study.incremental_detection <= study.static_detection
            assert study.preventable_transactions >= 0
        row = study.as_row()
        assert row["total tx"] == study.total_transactions

    def test_unknown_label_rejected(self, tiny_grab_dataset):
        with pytest.raises(StopIteration):
            run_case_study(tiny_grab_dataset, "no-such-label", dw_semantics())


class TestEnumerationTimeline:
    def test_timeline_counts_each_instance_once(self, tiny_grab_dataset):
        timeline = enumerate_over_time(
            tiny_grab_dataset, dw_semantics(), num_spans=6, max_instances=4
        )
        assert len(timeline.spans) == 6
        total_counted = sum(span.total_labelled() for span in timeline.spans)
        assert total_counted <= len(tiny_grab_dataset.fraud_communities)
        assert total_counted >= 1

    def test_series_and_rows(self, tiny_grab_dataset):
        timeline = enumerate_over_time(
            tiny_grab_dataset, dw_semantics(), num_spans=5, max_instances=4
        )
        rows = timeline.as_rows()
        assert len(rows) == 5
        for pattern in timeline.patterns():
            series = timeline.series(pattern)
            assert len(series) == 5
            normalised = timeline.normalised_series(pattern)
            assert max(normalised) == pytest.approx(1.0)

    def test_normalised_series_of_absent_pattern(self, tiny_grab_dataset):
        timeline = enumerate_over_time(tiny_grab_dataset, dw_semantics(), num_spans=3)
        assert timeline.normalised_series("unseen-pattern") == [0.0, 0.0, 0.0]
