"""Unit tests for single-edge insertion maintenance (Section 4.1)."""

from __future__ import annotations

import random

import pytest

from repro.core.insertion import insert_edge
from repro.core.state import PeelingState
from repro.peeling.semantics import dw_semantics, fraudar_semantics
from repro.peeling.static import peel

from tests.helpers import (
    assert_matches_static,
    assert_valid_state,
    build_state,
    dyadic_weight,
    random_weighted_edges,
)


class TestBasicInsertion:
    def test_insert_between_existing_vertices(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        insert_edge(state, "l0", "l1", 0.5)
        assert state.graph.has_edge("l0", "l1")
        assert_matches_static(state)

    def test_insert_edge_creating_new_vertex(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        insert_edge(state, "newcomer", "h0", 1.0)
        assert "newcomer" in state
        assert_matches_static(state)

    def test_insert_edge_creating_two_new_vertices(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        insert_edge(state, "x1", "x2", 2.0)
        assert "x1" in state and "x2" in state
        assert_matches_static(state)

    def test_new_vertex_priors_are_applied(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        insert_edge(state, "vip", "h0", 1.0, src_prior=3.0)
        assert state.graph.vertex_weight("vip") == 3.0
        assert_valid_state(state)

    def test_prefix_before_seed_is_untouched(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        order_before = list(state.order)
        src, dst = "h1", "h3"
        seed_position = min(state.position(src), state.position(dst))
        insert_edge(state, src, dst, 0.25)
        assert list(state.order[:seed_position]) == order_before[:seed_position]

    def test_total_suspiciousness_tracks_graph(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        insert_edge(state, "h0", "l2", 1.5)
        assert state.total == pytest.approx(state.graph.total_suspiciousness())

    def test_stats_report_affected_area(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        stats = insert_edge(state, "l0", "l2", 0.25)
        assert stats.queued_vertices >= 1
        assert stats.affected_area > 0
        assert stats.islands >= 1

    def test_duplicate_edge_insertion_accumulates(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        insert_edge(state, "h0", "h1", 1.0)
        insert_edge(state, "h0", "h1", 1.0)
        assert state.graph.edge_weight("h0", "h1") == pytest.approx(5.0)
        assert_matches_static(state)

    def test_community_can_grow_after_insertions(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        # Densify the light clique until it overtakes the heavy one.
        for _ in range(8):
            insert_edge(state, "l0", "l1", 4.0)
            insert_edge(state, "l1", "l2", 4.0)
            insert_edge(state, "l0", "l2", 4.0)
        community = state.community()
        assert {"l0", "l1", "l2"} <= set(community.vertices)
        assert_matches_static(state)


class TestFraudarInsertion:
    def test_fd_edge_weight_assigned_at_insertion_time(self, fd):
        graph = fd.materialize([("a", "hub", 1.0), ("b", "hub", 1.0)])
        state = PeelingState(graph, fd)
        insert_edge(state, "c", "hub", 1.0)
        # The new edge sees the hub's degree at insertion time (2 + itself via
        # vertex creation ordering), so its weight differs from the original two.
        assert state.graph.has_edge("c", "hub")
        assert_valid_state(state)

    def test_fd_sequence_stays_valid_over_many_insertions(self, fd):
        rng = random.Random(3)
        edges = random_weighted_edges(20, 60, rng)
        graph = fd.materialize(edges)
        state = PeelingState(graph, fd)
        for _ in range(30):
            src, dst = rng.randrange(25), rng.randrange(25)
            if src == dst:
                continue
            insert_edge(state, src, dst, 1.0)
        assert_valid_state(state)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_sequence_identical_to_static_with_exact_weights(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 28)
        m = rng.randint(5, min(n * (n - 1) // 2, 70))
        all_edges = random_weighted_edges(n, m, rng)
        cut = rng.randint(1, min(8, len(all_edges) - 1))
        state = build_state(all_edges[:-cut])
        for src, dst, weight in all_edges[-cut:]:
            insert_edge(state, src, dst, weight)
        assert_matches_static(state, exact=True)

    @pytest.mark.parametrize("seed", range(3))
    def test_valid_sequence_with_continuous_weights(self, seed):
        rng = random.Random(100 + seed)
        all_edges = random_weighted_edges(20, 60, rng, dyadic=False)
        state = build_state(all_edges[:-5])
        for src, dst, weight in all_edges[-5:]:
            insert_edge(state, src, dst, weight)
        assert_matches_static(state, exact=False)

    def test_long_insertion_run_stays_consistent(self):
        rng = random.Random(77)
        all_edges = random_weighted_edges(40, 200, rng)
        state = build_state(all_edges[:100])
        for src, dst, weight in all_edges[100:]:
            insert_edge(state, src, dst, weight)
            state.check_consistency()
        assert_matches_static(state)

    def test_insertion_into_empty_initial_graph(self, dw):
        graph = dw.materialize([])
        state = PeelingState(graph, dw)
        rng = random.Random(9)
        for src, dst, weight in random_weighted_edges(10, 20, rng):
            insert_edge(state, src, dst, weight)
        assert_matches_static(state)
