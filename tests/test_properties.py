"""Property-based tests (hypothesis) for the core invariants.

These are the strongest correctness checks in the suite: for arbitrary
random graphs and arbitrary update interleavings, the incrementally
maintained peeling state must be indistinguishable from a from-scratch run.
Weights are drawn as multiples of 1/64 so floating-point arithmetic is
exact and sequence equality can be asserted literally (see
``tests/helpers.py``).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batch import insert_batch
from repro.core.deletion import delete_edges
from repro.core.insertion import insert_edge
from repro.core.state import PeelingState
from repro.graph.graph import DynamicGraph
from repro.peeling.exact import brute_force_densest
from repro.peeling.result import best_suffix, densities_from_weights
from repro.peeling.semantics import dw_semantics, subset_density
from repro.peeling.static import peel

from tests.helpers import assert_matches_static, assert_valid_state

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def weighted_edge_lists(draw, min_vertices=3, max_vertices=16, max_edges=50):
    """Random simple directed edge lists with exact (dyadic) weights."""
    n = draw(st.integers(min_vertices, max_vertices))
    possible = [(i, j) for i in range(n) for j in range(n) if i != j]
    count = draw(st.integers(1, min(max_edges, len(possible))))
    pairs = draw(st.permutations(possible))[:count]
    weights = draw(
        st.lists(
            st.integers(1, 256).map(lambda u: u / 64.0),
            min_size=count,
            max_size=count,
        )
    )
    return [(src, dst, w) for (src, dst), w in zip(pairs, weights)]


@st.composite
def graphs_with_updates(draw):
    """A split of a random edge list into (initial, increments)."""
    edges = draw(weighted_edge_lists(min_vertices=4))
    cut = draw(st.integers(1, max(1, len(edges) // 2)))
    return edges[:-cut] or edges[:1], edges[-cut:]


class TestStaticPeelingProperties:
    @given(weighted_edge_lists())
    @SETTINGS
    def test_peel_weights_telescope_and_sequence_is_greedy(self, edges):
        graph = dw_semantics().materialize(edges)
        result = peel(graph, "DW")
        assert abs(sum(result.weights) - graph.total_suspiciousness()) < 1e-9
        from repro.peeling.guarantees import is_valid_peeling_sequence

        assert is_valid_peeling_sequence(graph, result.order, result.weights)

    @given(weighted_edge_lists(max_vertices=10, max_edges=24))
    @SETTINGS
    def test_half_approximation_guarantee(self, edges):
        graph = dw_semantics().materialize(edges)
        result = peel(graph, "DW")
        optimum = brute_force_densest(graph)
        assert subset_density(graph, result.community) >= optimum.density / 2.0 - 1e-9

    @given(weighted_edge_lists())
    @SETTINGS
    def test_community_density_is_max_over_suffixes(self, edges):
        graph = dw_semantics().materialize(edges)
        result = peel(graph, "DW")
        densities = densities_from_weights(result.total_suspiciousness, result.weights)
        assert result.best_density >= max(densities) - 1e-9

    @given(st.floats(0.1, 100.0), st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20))
    @SETTINGS
    def test_best_suffix_consistent_with_density_profile(self, extra, weights):
        total = sum(weights) + extra
        index, density = best_suffix(total, weights)
        densities = densities_from_weights(total, weights)
        assert density >= max(densities) - 1e-9
        assert densities[index] <= density + 1e-9


class TestIncrementalEquivalenceProperties:
    @given(graphs_with_updates())
    @SETTINGS
    def test_single_edge_insertions_match_static(self, split):
        initial, increments = split
        state = PeelingState(dw_semantics().materialize(initial), dw_semantics())
        for src, dst, weight in increments:
            insert_edge(state, src, dst, weight)
        assert_matches_static(state)

    @given(graphs_with_updates())
    @SETTINGS
    def test_batch_insertion_matches_static(self, split):
        initial, increments = split
        state = PeelingState(dw_semantics().materialize(initial), dw_semantics())
        insert_batch(state, increments)
        assert_matches_static(state)

    @given(graphs_with_updates(), st.integers(1, 4))
    @SETTINGS
    def test_arbitrary_batch_partitioning_matches_static(self, split, chunk):
        initial, increments = split
        state = PeelingState(dw_semantics().materialize(initial), dw_semantics())
        for start in range(0, len(increments), chunk):
            insert_batch(state, increments[start : start + chunk])
        assert_matches_static(state)

    @given(weighted_edge_lists(min_vertices=4))
    @SETTINGS
    def test_deleting_a_random_edge_matches_static(self, edges):
        state = PeelingState(dw_semantics().materialize(edges), dw_semantics())
        src, dst, _weight = edges[len(edges) // 2]
        delete_edges(state, [(src, dst)])
        assert_matches_static(state)

    @given(graphs_with_updates())
    @SETTINGS
    def test_insert_then_delete_round_trip_matches_static(self, split):
        initial, increments = split
        state = PeelingState(dw_semantics().materialize(initial), dw_semantics())
        insert_batch(state, increments)
        # Delete the just-inserted edges again (note: weights accumulated on
        # duplicates are removed entirely, so compare against a fresh peel of
        # whatever graph actually remains rather than the initial one).
        delete_edges(state, [(src, dst) for src, dst, _w in increments])
        assert_valid_state(state)
        assert_matches_static(state)


class TestTotalSuspiciousnessProperties:
    @given(graphs_with_updates())
    @SETTINGS
    def test_total_tracks_graph_through_updates(self, split):
        initial, increments = split
        semantics = dw_semantics()
        state = PeelingState(semantics.materialize(initial), semantics)
        insert_batch(state, increments)
        assert abs(state.total - state.graph.total_suspiciousness()) < 1e-9
        state.check_consistency()

    @given(weighted_edge_lists())
    @SETTINGS
    def test_isolated_vertices_never_join_the_community(self, edges):
        semantics = dw_semantics()
        graph = semantics.materialize(edges)
        for i in range(3):
            graph.add_vertex(f"isolated-{i}", 0.0)
        state = PeelingState(graph, semantics)
        community = state.community()
        assert not any(str(v).startswith("isolated-") for v in community.vertices)
