"""The sharded engine layer: protocol, router, and differential exactness.

The central contract under test: ``ShardedSpade.detect()`` — the merged
coordinator-pass detection — is *identical* to single-engine
``Spade.detect()`` for DG / DW / FD over mixed insert / delete / batch
replays, for every shard count.  On dyadic streams the equality is bit
level (sequence, weights, density); on lognormal replay workloads the
vertex sets and peeling order are still identical while the density may
differ by the accumulated-total ulp drift the single engine has always
had versus a from-scratch peel.

Also covered here: the ``DetectionEngine`` protocol conformance of both
implementations, the deterministic router partition, cross-shard queue
semantics, the ``Spade.flush_pending`` empty-buffer fast path the
coordinator tick relies on, and the process-parallel shard executor.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.grouping import EdgeGrouper
from repro.core.spade import Spade
from repro.engine import DetectionEngine, ShardRouter, ShardedSpade, create_engine
from repro.errors import StateError
from repro.peeling.semantics import (
    dg_semantics,
    dw_semantics,
    fraudar_semantics,
)
from repro.peeling.static import peel
from repro.workloads.grab import GrabConfig, generate_grab_dataset

from tests.helpers import random_weighted_edges

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

SEMANTICS_FACTORIES = {
    "DG": dg_semantics,
    "DW": dw_semantics,
    "FD": fraudar_semantics,
}

SHARD_COUNTS = [1, 2, 4]


def _assert_exact_match(single: Spade, sharded: ShardedSpade, exact_floats: bool = True) -> None:
    """Equality of the two engines' detections and sequences.

    With dyadic edge suspiciousness (DG / DW on dyadic raw weights) every
    float operation is exact, so the merged sharded detection must equal
    the single engine's maintained one bit for bit.

    With non-dyadic weights (FD's ``1/log``) the *single* engine's
    maintained sequence has always been allowed ulp-level drift against a
    from-scratch peel of its own graph (see ``assert_matches_static``); on
    adversarial near-tie graphs that drift can flip an ordering.  The
    sharded layer itself must still introduce **zero** error, which is
    asserted by requiring its merged result to be bit-identical to a
    fresh peel of the single engine's graph, plus density agreement with
    the maintained result up to that historical drift.
    """
    c1, c2 = single.detect(), sharded.detect()
    r1, r2 = single.result(), sharded.result()
    if exact_floats:
        assert c1.vertices == c2.vertices
        assert c1.peel_index == c2.peel_index
        assert c1.density == c2.density
        assert list(r1.order) == list(r2.order)
        assert list(r1.weights) == list(r2.weights)
    else:
        fresh = peel(single.graph, single.semantics.name)
        assert list(fresh.order) == list(r2.order)
        assert list(fresh.weights) == list(r2.weights)
        assert fresh.community == c2.vertices
        assert c2.density == pytest.approx(c1.density, rel=1e-9)


@st.composite
def dyadic_streams(draw):
    """A dyadic initial edge list plus a mixed insert/delete update script."""
    n = draw(st.integers(4, 16))
    rng = random.Random(draw(st.integers(0, 2**20)))
    initial = random_weighted_edges(n, draw(st.integers(3, 40)), rng)
    script = []
    applied = list(initial)
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["insert", "batch", "delete"]))
        if kind == "delete" and applied:
            count = draw(st.integers(1, min(4, len(applied))))
            doomed = [applied.pop(rng.randrange(len(applied)))[:2] for _ in range(count)]
            script.append(("delete", doomed))
        else:
            fresh = random_weighted_edges(n + 4, draw(st.integers(1, 6)), rng)
            applied.extend(fresh)
            script.append(("insert" if kind == "delete" else kind, fresh))
    return initial, script


class TestProtocol:
    """Both implementations structurally satisfy DetectionEngine."""

    def test_spade_satisfies_protocol(self):
        spade = Spade(dg_semantics())
        spade.load_edges([("a", "b"), ("b", "c")])
        assert isinstance(spade, DetectionEngine)

    def test_sharded_satisfies_protocol(self):
        sharded = ShardedSpade(dg_semantics(), num_shards=2)
        sharded.load_edges([("a", "b"), ("b", "c")])
        assert isinstance(sharded, DetectionEngine)

    def test_create_engine_dispatch(self):
        assert isinstance(create_engine(shards=1), Spade)
        sharded = create_engine(shards=3)
        assert isinstance(sharded, ShardedSpade)
        assert sharded.num_shards == 3

    def test_create_engine_rejects_sharded_options_for_single(self):
        with pytest.raises(TypeError):
            create_engine(shards=1, coordinator_interval=8)

    def test_sharded_requires_load(self):
        sharded = ShardedSpade(dg_semantics(), num_shards=2)
        with pytest.raises(StateError):
            sharded.detect()
        with pytest.raises(StateError):
            sharded.insert_edge("a", "b")


class TestShardRouter:
    """The partition map is deterministic and label-hash independent."""

    def test_partition_is_deterministic_and_total(self):
        sharded = ShardedSpade(dw_semantics(), num_shards=4)
        sharded.load_edges([(f"u{i}", f"u{i + 1}", 1.0) for i in range(50)])
        router = sharded.router
        counts = router.partition_counts()
        assert sum(counts) == 51
        for label in sharded.graph.vertices():
            assert 0 <= router.shard_of(label) < 4
            assert router.shard_of(label) == router.shard_of(label)

    def test_route_edge_owned_by_source_home(self):
        sharded = ShardedSpade(dw_semantics(), num_shards=2)
        sharded.load_edges([("a", "b", 1.0), ("b", "c", 1.0)])
        router = sharded.router
        for src, dst in [("a", "b"), ("b", "c")]:
            home, cross = router.route_edge(src, dst)
            assert home == router.shard_of(src)
            assert cross == (router.shard_of(dst) != home)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardedSpade(num_shards=0)
        with pytest.raises(ValueError):
            ShardRouter(None, 0)


class TestShardedDifferential:
    """ShardedSpade.detect() is identical to single-engine Spade.detect()."""

    @SETTINGS
    @given(data=dyadic_streams(), semantics_index=st.integers(0, 2), shards=st.sampled_from(SHARD_COUNTS))
    def test_mixed_replays_match_single_engine(self, data, semantics_index, shards):
        initial, script = data
        name, factory = list(SEMANTICS_FACTORIES.items())[semantics_index]
        exact_floats = name != "FD"  # FD's 1/log weights are not dyadic
        single = Spade(factory())
        single.load_edges(initial)
        sharded = ShardedSpade(factory(), num_shards=shards, coordinator_interval=4)
        sharded.load_edges(initial)
        _assert_exact_match(single, sharded, exact_floats)
        for kind, payload in script:
            if kind == "insert":
                for src, dst, weight in payload:
                    single.insert_edge(src, dst, weight)
                    sharded.insert_edge(src, dst, weight)
            elif kind == "batch":
                single.insert_batch_edges(payload)
                sharded.insert_batch_edges(payload)
            else:
                single.delete_edges(payload)
                sharded.delete_edges(payload)
            _assert_exact_match(single, sharded, exact_floats)

    @pytest.mark.parametrize("algo", ["DG", "DW", "FD"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_grab_replay_communities_identical(self, algo, shards, tiny_grab_dataset):
        """DG/DW/FD replay workloads: identical communities and order.

        The lognormal weights make the maintained total drift from a
        from-scratch sum by ulps, so the density is compared relatively
        while membership and order must match exactly.
        """
        factory = SEMANTICS_FACTORIES[algo]
        semantics = factory()
        single = Spade(semantics)
        single.load_graph(tiny_grab_dataset.initial_graph(semantics))
        sharded_semantics = factory()
        sharded = ShardedSpade(sharded_semantics, num_shards=shards, coordinator_interval=64)
        sharded.load_graph(tiny_grab_dataset.initial_graph(sharded_semantics))

        increments = list(tiny_grab_dataset.increments)
        third = max(1, len(increments) // 3)
        for edge in increments[:third]:
            single.insert_edge(edge.src, edge.dst, edge.weight)
            sharded.insert_edge(edge.src, edge.dst, edge.weight)
        single.insert_batch_edges([e.as_update() for e in increments[third : 2 * third]])
        sharded.insert_batch_edges([e.as_update() for e in increments[third : 2 * third]])
        doomed = [(src, dst) for src, dst, _ in tiny_grab_dataset.initial_edges[:100]]
        single.delete_edges(doomed)
        sharded.delete_edges(doomed)
        for edge in increments[2 * third :]:
            single.insert_edge(edge.src, edge.dst, edge.weight)
            sharded.insert_edge(edge.src, edge.dst, edge.weight)

        c1, c2 = single.detect(), sharded.detect()
        assert c1.vertices == c2.vertices
        assert c1.peel_index == c2.peel_index
        assert c2.density == pytest.approx(c1.density, rel=1e-9)
        if algo != "FD":
            # The lognormal raw weights pass through DG/DW's esusp exactly,
            # so even the full maintained sequence must match the merged
            # one.  FD's 1/log weights add the maintained-vs-fresh ulp
            # jitter deep in the peel tail (community unaffected).
            r1, r2 = single.result(), sharded.result()
            assert list(r1.order) == list(r2.order)

    def test_enumerate_frauds_matches_single_engine(self, tiny_grab_dataset):
        semantics = dw_semantics()
        single = Spade(semantics)
        single.load_graph(tiny_grab_dataset.initial_graph(semantics))
        sharded_semantics = dw_semantics()
        sharded = ShardedSpade(sharded_semantics, num_shards=4)
        sharded.load_graph(tiny_grab_dataset.initial_graph(sharded_semantics))
        for edge in list(tiny_grab_dataset.increments)[:200]:
            single.insert_edge(edge.src, edge.dst, edge.weight)
            sharded.insert_edge(edge.src, edge.dst, edge.weight)
        mine = sharded.enumerate_frauds(max_instances=3)
        theirs = single.enumerate_frauds(max_instances=3)
        assert [i.vertices for i in mine] == [i.vertices for i in theirs]


class TestCrossShardQueue:
    """Parked cross-shard updates behave like immediately applied ones."""

    def _engines(self, shards=4, interval=1024):
        rng = random.Random(5)
        initial = random_weighted_edges(30, 120, rng)
        single = Spade(dw_semantics())
        single.load_edges(initial)
        sharded = ShardedSpade(dw_semantics(), num_shards=shards, coordinator_interval=interval)
        sharded.load_edges(initial)
        return single, sharded, rng

    def test_queue_drained_by_detect(self):
        single, sharded, rng = self._engines()
        fresh = random_weighted_edges(40, 30, rng)
        for src, dst, weight in fresh:
            single.insert_edge(src, dst, weight)
            sharded.insert_edge(src, dst, weight)
        assert sharded.pending_edges() > 0  # some updates crossed shards
        _assert_exact_match(single, sharded)  # detect() drains the queue
        assert sharded.pending_edges() == 0

    def test_coordinator_interval_triggers_eager_pass(self):
        _, sharded, rng = self._engines(interval=4)
        fresh = random_weighted_edges(40, 40, rng)
        for src, dst, weight in fresh:
            sharded.insert_edge(src, dst, weight)
            assert sharded.pending_edges() < 4 + 1
        assert sharded.coordinator_flushes > 0

    def test_delete_of_parked_edge(self):
        """A cross-shard insert immediately followed by its delete nets out."""
        single, sharded, _ = self._engines()
        # Find a cross-shard pair of fresh labels.
        router = sharded.router
        sharded.insert_edge("fresh-x", "fresh-y", 2.0)
        single.insert_edge("fresh-x", "fresh-y", 2.0)
        single.delete_edges([("fresh-x", "fresh-y")])
        sharded.delete_edges([("fresh-x", "fresh-y")])
        _assert_exact_match(single, sharded)
        assert not sharded.graph.has_edge("fresh-x", "fresh-y")

    def test_batch_rejects_deletions_like_single_engine(self):
        from repro.graph.delta import EdgeUpdate

        single, sharded, _ = self._engines()
        bad = [EdgeUpdate("a", "b", delete=True)]
        with pytest.raises(ValueError):
            single.insert_batch_edges(bad)
        with pytest.raises(ValueError):
            sharded.insert_batch_edges(bad)
        _assert_exact_match(single, sharded)  # nothing was applied

    def test_unknown_edge_deletion_ignored(self):
        single, sharded, _ = self._engines()
        single.delete_edges([("no-such", "edge")])
        sharded.delete_edges([("no-such", "edge")])
        _assert_exact_match(single, sharded)

    def test_local_density_is_lower_bound(self):
        single, sharded, rng = self._engines()
        for src, dst, weight in random_weighted_edges(40, 30, rng):
            single.insert_edge(src, dst, weight)
            sharded.insert_edge(src, dst, weight)
        exact = sharded.detect()
        local = sharded.detect_local()
        assert local.density <= exact.density + 1e-12

    def test_local_density_lower_bound_survives_parked_deletes(self):
        """Parked cross-shard deletes must not inflate the local density.

        Without draining deletes first, removed weight would stay visible
        in shard states and the local density could *exceed* the global
        one, flipping is_benign's safety direction (an urgent edge
        classified benign and deferred).
        """
        block = [(f"b{i}", f"b{j}", 8.0) for i in range(6) for j in range(6) if i != j]
        single = Spade(dw_semantics())
        single.load_edges(block)
        sharded = ShardedSpade(dw_semantics(), num_shards=4, coordinator_interval=10_000)
        sharded.load_edges(block)
        doomed = [(s, d) for s, d, _ in block[:-1]]
        single.delete_edges(doomed)
        sharded.delete_edges(doomed)
        local = sharded.detect_local()
        exact = sharded.detect()
        assert local.density <= exact.density + 1e-12
        # And the benign classification agrees with the single engine.
        assert sharded.is_benign("x", "y", 5.0) == single.is_benign("x", "y", 5.0)
        _assert_exact_match(single, sharded)

    def test_shard_communities_cover_all_shards(self):
        _, sharded, _ = self._engines(shards=3)
        communities = sharded.shard_communities()
        assert len(communities) == 3


class TestFlushPendingFastPath:
    """Spade.flush_pending with an empty buffer must not touch the grouper."""

    def test_empty_flush_returns_cached_community(self, monkeypatch):
        spade = Spade(dw_semantics(), edge_grouping=True)
        rng = random.Random(3)
        spade.load_edges(random_weighted_edges(20, 60, rng))
        cached = spade.detect()

        calls = {"flush": 0}
        original = EdgeGrouper.flush

        def counting_flush(self):
            calls["flush"] += 1
            return original(self)

        monkeypatch.setattr(EdgeGrouper, "flush", counting_flush)
        result = spade.flush_pending()
        assert result is cached  # cache hit: no re-peel, no new detection scan
        assert calls["flush"] == 0  # the grouper was never invoked

    def test_nonempty_flush_still_applies(self):
        spade = Spade(dw_semantics(), edge_grouping=True)
        rng = random.Random(4)
        spade.load_edges(random_weighted_edges(20, 60, rng))
        # A tiny-weight edge between fresh vertices is benign and buffered.
        spade.insert_edge("quiet-a", "quiet-b", 1e-6)
        assert spade.pending_edges() == 1
        spade.flush_pending()
        assert spade.pending_edges() == 0
        assert spade.graph.has_edge("quiet-a", "quiet-b")

    def test_sharded_coordinator_tick_uses_fast_path(self, monkeypatch):
        sharded = ShardedSpade(dw_semantics(), num_shards=2, edge_grouping=True)
        rng = random.Random(5)
        sharded.load_edges(random_weighted_edges(20, 60, rng))
        sharded.detect()  # settle: queue drained, groupers empty

        calls = {"flush": 0}
        original = EdgeGrouper.flush

        def counting_flush(self):
            calls["flush"] += 1
            return original(self)

        monkeypatch.setattr(EdgeGrouper, "flush", counting_flush)
        sharded.detect()  # every tick calls shard.flush_pending()
        assert calls["flush"] == 0


class TestGroupingAndParallel:
    """Per-shard grouping and the process executor keep detection exact."""

    def test_grouped_sharded_detect_matches_ungrouped_single(self):
        rng = random.Random(6)
        initial = random_weighted_edges(25, 80, rng)
        single = Spade(dw_semantics())
        single.load_edges(initial)
        sharded = ShardedSpade(dw_semantics(), num_shards=3, edge_grouping=True)
        sharded.load_edges(initial)
        for src, dst, weight in random_weighted_edges(30, 40, rng):
            single.insert_edge(src, dst, weight)
            sharded.insert_edge(src, dst, weight)
        # Merged detection flushes the shard groupers, so deferral is
        # invisible to the exact result.
        _assert_exact_match(single, sharded)

    def test_parallel_shard_communities_match_serial(self):
        rng = random.Random(7)
        sharded = ShardedSpade(dw_semantics(), num_shards=2, backend="array")
        sharded.load_edges(random_weighted_edges(25, 90, rng))
        serial = sharded.shard_communities(parallel=False)
        parallel = sharded.shard_communities(parallel=True)
        assert [c.vertices for c in serial] == [c.vertices for c in parallel]
        assert [c.density for c in serial] == [c.density for c in parallel]


class TestSeedThreading:
    """Generators replay bit-identical streams for equal seeds."""

    def test_grab_generation_is_seed_deterministic(self):
        config = GrabConfig(
            name="det", num_customers=120, num_merchants=30, num_edges=600,
            fraud_instances_per_pattern=1, seed=11,
        )
        a = generate_grab_dataset(config)
        b = generate_grab_dataset(config)
        assert a.initial_edges == b.initial_edges
        assert [
            (e.src, e.dst, e.timestamp, e.weight, e.fraud_label) for e in a.increments
        ] == [(e.src, e.dst, e.timestamp, e.weight, e.fraud_label) for e in b.increments]

    def test_explicit_int_seed_matches_config_seed(self):
        config = GrabConfig(
            name="det", num_customers=80, num_merchants=20, num_edges=400, seed=13,
        )
        a = generate_grab_dataset(config)
        b = generate_grab_dataset(config, rng=13)
        assert a.initial_edges == b.initial_edges

    def test_injectors_accept_int_seeds(self):
        from repro.workloads.fraud import inject_collusion

        a = inject_collusion(21, label="x", start=0.0)
        b = inject_collusion(21, label="x", start=0.0)
        assert [(e.src, e.dst, e.timestamp, e.weight) for e in a.edges] == [
            (e.src, e.dst, e.timestamp, e.weight) for e in b.edges
        ]

    def test_injectors_reject_junk_rng(self):
        from repro.errors import WorkloadError
        from repro.workloads.fraud import as_generator

        with pytest.raises(WorkloadError):
            as_generator("not-an-rng")
