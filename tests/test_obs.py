"""Tests for the observability layer (``repro.obs``) and its serve wiring.

The tentpole guarantees under test:

* tracing is **inert**: a traced run produces bit-identical detection
  output to an untraced run of the same stream,
* one trace id is observable end to end — response header, the
  ``/debug/traces`` ring, and the JSONL event log all agree, with
  well-formed span parenting through the gateway, the WAL and the
  worker round trips,
* span parenting stays well-formed across a worker ``kill -9`` →
  respawn (the ``worker_respawn`` span parents correctly),
* sampling is deterministic in the trace id, and unsampled requests
  still carry an id while recording no spans,
* the profiling counters aggregate python/native phase timings and
  merge across worker snapshots.

Worker tests spawn real processes; workloads stay small.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal

import pytest

from repro.api.config import EngineConfig
from repro.errors import ConfigError
from repro.obs import (
    ObsConfig,
    TraceContext,
    TraceRecorder,
    activate,
    deactivate,
    read_events,
    sample_decision,
)
from repro.obs import profile as obs_profile
from repro.obs.__main__ import format_record
from repro.peeling.semantics import dw_semantics
from repro.serve.app import ServeApp
from repro.serve.config import ServeConfig
from repro.serve.metrics import Histogram, MetricsRegistry
from repro.serve.workers import WorkerEngine


@pytest.fixture(autouse=True)
def _single_backend_leg(graph_backend):
    if graph_backend != "array":
        pytest.skip("obs tests pin backend='array'; one leg is enough")


def drive(app: ServeApp, requests):
    """Start ``app``, issue HTTP requests over one keep-alive connection."""

    async def _drive():
        await app.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", app.server.port
            )
            results = []
            for method, path, body in requests:
                payload = b"" if body is None else json.dumps(body).encode()
                head = (
                    f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                )
                writer.write(head.encode() + payload)
                await writer.drain()
                status_line = (await reader.readline()).decode()
                headers = {}
                while True:
                    line = (await reader.readline()).decode().strip()
                    if not line:
                        break
                    name, _, value = line.partition(":")
                    headers[name.lower()] = value.strip()
                data = await reader.readexactly(int(headers["content-length"]))
                body_out = (
                    json.loads(data)
                    if "json" in headers.get("content-type", "")
                    else data.decode()
                )
                results.append((int(status_line.split()[1]), body_out, headers))
            writer.close()
            return results
        finally:
            await app.stop()

    return asyncio.run(_drive())


def serve_config(tmp_path=None, **overrides) -> EngineConfig:
    knobs = {
        "port": 0,
        "wal_dir": str(tmp_path / "wal") if tmp_path is not None else None,
        "fsync": False,
        "max_delay_ms": 1.0,
    }
    knobs.update(overrides)
    return EngineConfig(semantics="DW", backend="array", serve=ServeConfig(**knobs))


def bulk_edges(n=40, seed=7):
    rng = random.Random(seed)
    return [
        [f"u{rng.randrange(20)}", f"p{rng.randrange(15)}", rng.randrange(8, 49) / 16.0]
        for _ in range(n)
    ]


def assert_parenting_well_formed(spans):
    """Every non-null parent id must reference a span in the same trace."""
    ids = {span["id"] for span in spans}
    assert len(ids) == len(spans), "span ids must be unique"
    for span in spans:
        if span["parent"] is not None:
            assert span["parent"] in ids
            assert span["parent"] != span["id"]


class TestObsConfig:
    def test_defaults_validate(self):
        config = ObsConfig()
        assert config.trace_sample == 0.1
        assert config.slow_ms == 250.0
        assert config.trace_log is None
        assert config.trace_buffer == 512

    @pytest.mark.parametrize(
        "bad",
        [
            {"trace_sample": -0.1},
            {"trace_sample": 1.5},
            {"trace_sample": "lots"},
            {"slow_ms": -1.0},
            {"trace_buffer": 0},
            {"trace_buffer": True},
            {"trace_buffer": 10**7},
            {"trace_log": 5},
        ],
    )
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ConfigError):
            ObsConfig(**bad)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            ObsConfig.from_dict({"trace_sampel": 0.5})

    def test_nests_in_serve_config_and_round_trips(self):
        config = serve_config(obs={"trace_sample": 1.0, "slow_ms": 5.0})
        assert config.serve.obs.trace_sample == 1.0
        rebuilt = EngineConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.serve.obs.slow_ms == 5.0

    def test_obs_none_means_defaults(self):
        config = ServeConfig(obs=None)
        assert config.obs == ObsConfig()


class TestSampling:
    def test_rate_bounds(self):
        assert not sample_decision("deadbeefdeadbeef", 0.0)
        assert sample_decision("deadbeefdeadbeef", 1.0)

    def test_deterministic_per_id(self):
        for rate in (0.1, 0.5, 0.9):
            for trace_id in ("a" * 16, "b" * 16, "0123456789abcdef"):
                first = sample_decision(trace_id, rate)
                assert all(
                    sample_decision(trace_id, rate) == first for _ in range(5)
                )

    def test_rate_roughly_respected(self):
        rng = random.Random(99)
        ids = ["%016x" % rng.getrandbits(64) for _ in range(4000)]
        hits = sum(sample_decision(tid, 0.5) for tid in ids)
        assert 0.4 < hits / len(ids) < 0.6


class TestTraceContext:
    def test_stack_parenting(self):
        trace = TraceContext("t" * 16)
        outer = trace.start_span("outer")
        inner = trace.start_span("inner")
        trace.end_span(inner)
        sibling = trace.start_span("sibling")
        trace.end_span(sibling)
        trace.end_span(outer)
        assert inner.parent == outer.sid
        assert sibling.parent == outer.sid
        assert outer.parent is None

    def test_add_span_explicit_parent_overrides_stack(self):
        trace = TraceContext("t" * 16)
        anchor = trace.add_span("anchor", trace.began, trace.began + 0.01)
        child = trace.add_span(
            "child", trace.began, trace.began + 0.005, parent=anchor
        )
        assert child.parent == anchor.sid

    def test_unsampled_trace_is_inert(self):
        trace = TraceContext("t" * 16, sampled=False)
        assert trace.start_span("x") is None
        trace.end_span(None)
        assert trace.add_span("y", 0.0, 1.0) is None
        trace.annotate(k=1)
        assert trace.spans == []
        assert trace.annotations == {}
        duration = trace.finish(200)
        assert duration >= 0.0
        assert trace.status == 200

    def test_to_dict_exports_relative_ms_and_well_formed_tree(self):
        trace = TraceContext("t" * 16, method="POST", path="/v1/edges")
        outer = trace.start_span("outer", k="v")
        trace.end_span(trace.start_span("inner"))
        trace.end_span(outer)
        trace.annotate(wal_seq=3)
        trace.finish(200)
        record = trace.to_dict("sampled")
        assert record["trace_id"] == "t" * 16
        assert record["reason"] == "sampled"
        assert record["annotations"] == {"wal_seq": 3}
        assert_parenting_well_formed(record["spans"])
        for span in record["spans"]:
            assert span["start_ms"] >= 0.0
            assert span["duration_ms"] >= 0.0


class TestTraceRecorder:
    def _record(self, duration_ms, trace_id="x"):
        return {"trace_id": trace_id, "duration_ms": duration_ms}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceRecorder(0)

    def test_ring_wraparound_keeps_most_recent(self):
        recorder = TraceRecorder(4)
        for i in range(10):
            recorder.record(self._record(float(i), trace_id=f"t{i}"))
        held = [r["trace_id"] for r in recorder.snapshot()]
        assert held == ["t9", "t8", "t7", "t6"]
        assert recorder.total_recorded == 10
        assert recorder.capacity == 4

    def test_slowest_filters_and_limits(self):
        recorder = TraceRecorder(16)
        for i in range(8):
            recorder.record(self._record(float(i), trace_id=f"t{i}"))
        slow = recorder.slowest(min_ms=5.0)
        assert [r["trace_id"] for r in slow] == ["t7", "t6", "t5"]
        assert len(recorder.slowest(min_ms=0.0, limit=2)) == 2
        assert recorder.slowest(min_ms=10**6) == []

    def test_find(self):
        recorder = TraceRecorder(4)
        recorder.record(self._record(1.0, trace_id="abc"))
        assert recorder.find("abc")["duration_ms"] == 1.0
        assert recorder.find("zzz") is None


class TestProfile:
    @pytest.fixture(autouse=True)
    def _clean_counters(self):
        obs_profile.reset()
        yield
        obs_profile.reset()

    def test_record_and_snapshot(self):
        obs_profile.record("peel_greedy", "python", 0.25)
        obs_profile.record("peel_greedy", "python", 0.75)
        obs_profile.record("reorder", "native", 0.5)
        table = obs_profile.snapshot()
        assert table["peel_greedy[python]"] == {"calls": 2, "seconds": 1.0}
        assert table["reorder[native]"]["calls"] == 1

    def test_timed_context_manager(self):
        with obs_profile.timed("peel_csr_init"):
            pass
        table = obs_profile.snapshot()
        assert table["peel_csr_init[python]"]["calls"] == 1
        assert table["peel_csr_init[python]"]["seconds"] >= 0.0

    def test_merge_sums_tables(self):
        merged = obs_profile.merge(
            [
                {"reorder[native]": {"calls": 2, "seconds": 1.0}},
                {"reorder[native]": {"calls": 3, "seconds": 0.5}},
                {"peel_greedy[python]": {"calls": 1, "seconds": 0.1}},
                "garbage",
            ]
        )
        assert merged["reorder[native]"] == {"calls": 5, "seconds": 1.5}
        assert merged["peel_greedy[python]"]["calls"] == 1

    def test_split_key(self):
        assert obs_profile.split_key("peel_greedy[native]") == (
            "peel_greedy",
            "native",
        )
        assert obs_profile.split_key("weird") == ("weird", "unknown")

    def test_compute_core_records_phases(self, dw):
        from repro.core.spade import Spade

        spade = Spade(dw)
        spade.load_edges([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 1.5)])
        spade.insert_edge("c", "d", 1.0)
        spade.detect()
        table = obs_profile.snapshot()
        assert any(key.startswith("peel_") for key in table)
        assert any(key.startswith("reorder[") for key in table)


class TestMetricsSatellites:
    def test_empty_histogram_quantile_is_zero(self):
        histogram = Histogram("h", "help")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(0.99) == 0.0

    def test_duplicate_registration_error_is_actionable(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs")
        with pytest.raises(ValueError) as excinfo:
            registry.histogram("jobs_total", "jobs again")
        message = str(excinfo.value)
        assert "already registered" in message
        assert "jobs_total" in message
        assert "registry.get" in message

    def test_get_or_register_idiom(self):
        registry = MetricsRegistry()
        family = registry.histogram("stage", "s", labelnames=("stage",))
        assert registry.get("stage") is family


class TestServeTracing:
    def test_every_response_carries_trace_id_even_unsampled(self, tmp_path):
        app = ServeApp(serve_config(obs={"trace_sample": 0.0, "slow_ms": 0.0}))
        results = drive(
            app,
            [
                ("GET", "/healthz", None),
                ("POST", "/v1/edges", {"edges": bulk_edges(5)}),
                ("GET", "/nope", None),
            ],
        )
        seen = set()
        for status, _body, headers in results:
            assert "x-repro-trace-id" in headers
            seen.add(headers["x-repro-trace-id"])
        assert len(seen) == 3  # fresh id per request
        assert results[2][0] == 404

    def test_bulk_trace_end_to_end(self, tmp_path):
        app = ServeApp(
            serve_config(
                tmp_path,
                obs={"trace_sample": 1.0, "slow_ms": 0.0, "trace_log": "auto"},
            )
        )
        results = drive(
            app,
            [
                ("POST", "/v1/edges", {"edges": bulk_edges(30)}),
                ("GET", "/debug/traces?limit=10", None),
            ],
        )
        status, _body, headers = results[0]
        assert status == 200
        trace_id = headers["x-repro-trace-id"]

        payload = results[1][1]
        assert payload["sample_rate"] == 1.0
        entry = next(t for t in payload["traces"] if t["trace_id"] == trace_id)
        names = {span["name"] for span in entry["spans"]}
        assert {"queue_wait", "wal_append", "engine_apply"} <= names
        assert_parenting_well_formed(entry["spans"])
        assert entry["annotations"]["wal_seq"] >= 1
        wal_span = next(s for s in entry["spans"] if s["name"] == "wal_append")
        assert wal_span["attrs"]["fsync"] is False

        # The JSONL event log holds the same trace id.
        records, _ = read_events(tmp_path / "wal" / "events.jsonl")
        assert any(r["trace_id"] == trace_id for r in records)
        assert all(r["reason"] in ("sampled", "slow") for r in records)

    def test_traced_run_bit_identical_to_untraced(self, tmp_path):
        edges = bulk_edges(60, seed=13)
        bodies = []
        for sample in (1.0, 0.0):
            app = ServeApp(
                serve_config(obs={"trace_sample": sample, "slow_ms": 0.0})
            )
            results = drive(
                app,
                [
                    ("POST", "/v1/edges", {"edges": edges[:30]}),
                    ("POST", "/v1/edges", {"edges": edges[30:]}),
                    ("POST", "/v1/flush", None),
                    ("GET", "/v1/detect", None),
                ],
            )
            assert all(status == 200 for status, _b, _h in results)
            bodies.append(results[3][1])
        assert bodies[0] == bodies[1]

    def test_debug_traces_filters(self, tmp_path):
        app = ServeApp(serve_config(obs={"trace_sample": 1.0, "slow_ms": 0.0}))
        requests = [("GET", "/healthz", None)] * 5 + [
            ("GET", "/debug/traces?min_ms=60000", None),
            ("GET", "/debug/traces?limit=2", None),
        ]
        results = drive(app, requests)
        assert results[5][1]["count"] == 0
        assert results[6][1]["count"] == 2
        assert results[6][1]["recorded"] >= 6

    def test_debug_traces_by_id(self, tmp_path):
        app = ServeApp(serve_config(obs={"trace_sample": 1.0, "slow_ms": 0.0}))
        results = drive(
            app,
            [
                ("GET", "/healthz", None),
                ("GET", "/debug/traces?trace_id=nonexistent", None),
            ],
        )
        wanted = results[0][2]["x-repro-trace-id"]
        assert results[1][1]["count"] == 0
        app = ServeApp(serve_config(obs={"trace_sample": 1.0, "slow_ms": 0.0}))
        results = drive(
            app,
            [
                ("GET", "/healthz", None),
                ("GET", "/debug/traces", None),
            ],
        )
        wanted = results[0][2]["x-repro-trace-id"]
        held = [t["trace_id"] for t in results[1][1]["traces"]]
        assert wanted in held

    def test_slow_threshold_records_unsampled_requests(self, tmp_path):
        # sample=0 but a microscopic slow threshold: every request trips
        # it and is recorded (without spans) — the unsampled escape hatch.
        # (slow_ms=0 would *disable* the slow path entirely.)
        app = ServeApp(serve_config(obs={"trace_sample": 0.0, "slow_ms": 1e-6}))
        results = drive(
            app,
            [
                ("GET", "/healthz", None),
                ("GET", "/debug/traces", None),
            ],
        )
        traces = results[1][1]["traces"]
        assert len(traces) >= 1
        assert all(t["reason"] == "slow" for t in traces)
        assert all(t["spans"] == [] for t in traces)

    def test_debug_profile_and_build_info(self, tmp_path):
        app = ServeApp(serve_config(obs={"trace_sample": 1.0, "slow_ms": 0.0}))
        results = drive(
            app,
            [
                ("POST", "/v1/edges", {"edges": bulk_edges(30)}),
                ("POST", "/v1/flush", None),
                ("GET", "/v1/detect", None),
                ("GET", "/debug/profile", None),
                ("GET", "/metrics", None),
            ],
        )
        profile = results[3][1]
        assert profile["kernel"] in ("python", "native")
        assert any(key.startswith("peel_") for key in profile["merged"])
        metrics_text = results[4][1]
        assert "repro_build_info" in metrics_text
        assert 'version="' in metrics_text
        assert "repro_profile_seconds" in metrics_text
        assert "repro_stage_seconds" in metrics_text
        assert "repro_traces_recorded_total" in metrics_text


class TestWorkerTracing:
    def _engine(self, metrics=None):
        return WorkerEngine(
            dw_semantics(), num_shards=2, coordinator_interval=16, metrics=metrics
        )

    def _workload(self, n=60, seed=3):
        rng = random.Random(seed)
        return [
            (f"u{rng.randrange(25)}", f"p{rng.randrange(18)}", rng.randrange(8, 49) / 16.0)
            for _ in range(n)
        ]

    def test_worker_roundtrip_spans_attach_to_active_trace(self):
        edges = self._workload()
        trace = TraceContext("w" * 16)
        with self._engine() as workers:
            workers.load_edges(edges[:40])
            token = activate(trace)
            try:
                for src, dst, weight in edges[40:]:
                    workers.insert_edge(src, dst, weight)
            finally:
                deactivate(token)
        names = [span.name for span in trace.spans]
        assert "worker_roundtrip" in names
        roundtrips = [s for s in trace.spans if s.name == "worker_roundtrip"]
        children = [s for s in trace.spans if s.name == "worker_apply"]
        roundtrip_ids = {s.sid for s in roundtrips}
        assert children, "worker_apply child spans expected"
        assert all(child.parent in roundtrip_ids for child in children)
        assert_parenting_well_formed(
            [span.to_dict(trace.began) for span in trace.spans]
        )

    def test_span_parenting_survives_kill_minus_nine_respawn(self):
        edges = self._workload(80, seed=11)
        trace = TraceContext("k" * 16)
        with self._engine() as workers:
            workers.load_edges(edges[:50])
            victim = workers.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            token = activate(trace)
            try:
                for src, dst, weight in edges[50:]:
                    workers.insert_edge(src, dst, weight)
            finally:
                deactivate(token)
            assert workers.worker_restarts[0] == 1
        names = [span.name for span in trace.spans]
        assert "worker_respawn" in names
        respawn = next(s for s in trace.spans if s.name == "worker_respawn")
        assert respawn.attrs["shard"] == 0
        assert respawn.attrs["restarts"] == 1
        assert_parenting_well_formed(
            [span.to_dict(trace.began) for span in trace.spans]
        )

    def test_worker_profiles_surface(self):
        edges = self._workload(70, seed=5)
        with self._engine() as workers:
            workers.load_edges(edges[:40])
            for src, dst, weight in edges[40:]:
                workers.insert_edge(src, dst, weight)
            profiles = workers.worker_profiles()
        assert profiles, "at least one shard should report a profile table"
        for table in profiles.values():
            for key, cell in table.items():
                phase, kernel = obs_profile.split_key(key)
                assert phase
                assert kernel in ("python", "native")
                assert cell["calls"] >= 1


class TestEventLogTooling:
    def test_format_record_renders_one_line(self):
        line = format_record(
            {
                "ts": 1754560000.0,
                "trace_id": "abcd" * 4,
                "method": "POST",
                "path": "/v1/edges",
                "status": 200,
                "duration_ms": 12.5,
                "reason": "slow",
                "spans": [
                    {"id": 1, "name": "queue_wait", "start_ms": 0.0, "duration_ms": 0.5},
                    {"id": 2, "name": "queue_wait", "start_ms": 0.1, "duration_ms": 0.5},
                ],
            }
        )
        assert "abcd" * 4 in line
        assert "POST /v1/edges" in line
        assert "12.50ms" in line
        assert "[slow]" in line
        assert "queue_wait" in line and "×2" in line

    def test_read_events_round_trip(self, tmp_path):
        from repro.obs import EventLog

        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.write({"trace_id": "a", "duration_ms": 1.0})
            log.write({"trace_id": "b", "duration_ms": 2.0})
        records, offset = read_events(path)
        assert [r["trace_id"] for r in records] == ["a", "b"]
        more, offset2 = read_events(path, offset)
        assert more == [] and offset2 == offset
