"""Tests for the stream replay driver."""

from __future__ import annotations

import pytest

from repro.core.spade import Spade
from repro.streaming.policies import BatchPolicy, EdgeGroupingPolicy, PerEdgePolicy
from repro.streaming.replay import replay_stream
from repro.streaming.stream import TimestampedEdge, UpdateStream

from tests.helpers import assert_valid_state


def fraud_burst_stream() -> tuple:
    """Background edges plus a dense labelled burst; returns (stream, truth)."""
    edges = []
    for i in range(40):
        edges.append(TimestampedEdge(f"bg{i}", f"shop{i % 7}", float(i), 0.5))
    members = [f"fraud{i}" for i in range(5)]
    ts = 40.0
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            for _ in range(3):
                edges.append(TimestampedEdge(u, v, ts, 6.0, fraud_label="ring"))
                ts += 0.25
    stream = UpdateStream(edges, sort=True)
    return stream, {"ring": frozenset(members)}


@pytest.fixture
def loaded_spade(dw):
    spade = Spade(dw)
    spade.load_edges([("seed1", "seed2", 2.0), ("seed2", "seed3", 2.0), ("seed1", "seed3", 2.0)])
    return spade


class TestReplayBasics:
    def test_all_edges_processed(self, loaded_spade):
        stream, _ = fraud_burst_stream()
        report = replay_stream(loaded_spade, stream, PerEdgePolicy())
        assert report.metrics.edges == len(stream)
        assert report.metrics.flushes == len(stream)
        assert_valid_state(loaded_spade.state)

    def test_batch_policy_flush_count(self, loaded_spade):
        stream, _ = fraud_burst_stream()
        report = replay_stream(loaded_spade, stream, BatchPolicy(16))
        assert report.metrics.edges == len(stream)
        assert report.metrics.flushes == -(-len(stream) // 16)

    def test_leftover_edges_are_drained(self, loaded_spade):
        stream, _ = fraud_burst_stream()
        report = replay_stream(loaded_spade, stream, BatchPolicy(1000))
        assert report.metrics.flushes == 1
        assert report.metrics.edges == len(stream)

    def test_fraud_detection_and_prevention(self, loaded_spade):
        stream, truth = fraud_burst_stream()
        report = replay_stream(loaded_spade, stream, PerEdgePolicy(), fraud_communities=truth)
        assert report.detection_times.get("ring") is not None
        assert report.metrics.prevention_ratio > 0.3

    def test_larger_batches_increase_latency(self, dw):
        stream, truth = fraud_burst_stream()

        def run(policy):
            spade = Spade(dw)
            spade.load_edges([("seed1", "seed2", 2.0)])
            return replay_stream(spade, stream, policy, fraud_communities=truth)

        per_edge = run(PerEdgePolicy())
        batched = run(BatchPolicy(40))
        assert batched.metrics.mean_latency > per_edge.metrics.mean_latency
        assert batched.metrics.queueing_share > 0.5

    def test_grouping_policy_reports_prevention(self, dw):
        stream, truth = fraud_burst_stream()
        spade = Spade(dw)
        spade.load_edges([("seed1", "seed2", 2.0)])
        report = replay_stream(
            spade, stream, EdgeGroupingPolicy(), fraud_communities=truth, ban_detected=True
        )
        assert report.metrics.prevention_ratio > 0.2

    def test_ban_detected_blocks_later_fraud_edges(self, dw):
        stream, truth = fraud_burst_stream()
        spade = Spade(dw)
        spade.load_edges([("seed1", "seed2", 2.0)])
        report = replay_stream(
            spade, stream, PerEdgePolicy(), fraud_communities=truth, ban_detected=True
        )
        # Banned edges never reach the graph, so fewer edges are processed.
        assert report.metrics.edges < len(stream)
        for member in truth["ring"]:
            if spade.graph.has_vertex(member):
                assert spade.graph.degree(member) <= 8

    def test_detect_after_flush_false_skips_detection(self, loaded_spade):
        stream, truth = fraud_burst_stream()
        report = replay_stream(
            loaded_spade, stream, PerEdgePolicy(), fraud_communities=truth, detect_after_flush=False
        )
        assert report.detection_times == {}

    def test_summary_and_report_name(self, loaded_spade):
        stream, _ = fraud_burst_stream()
        report = replay_stream(loaded_spade, stream, BatchPolicy(10, label="my-batch"))
        assert report.name == "my-batch"
        assert "my-batch" in report.summary()

    def test_empty_stream(self, loaded_spade):
        report = replay_stream(loaded_spade, UpdateStream([]), PerEdgePolicy())
        assert report.metrics.edges == 0
        assert report.metrics.flushes == 0
        assert report.metrics.prevention_ratio == 0.0
