"""Tests for the storage layer (edge lists, JSON lines, snapshot store)."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.graph.graph import DynamicGraph
from repro.storage.edgelist import read_edgelist, write_edgelist
from repro.storage.jsonl import (
    JsonlWriter,
    read_records,
    read_stream,
    tail,
    write_records,
    write_stream,
)
from repro.storage.store import SnapshotStore
from repro.streaming.stream import TimestampedEdge, UpdateStream


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "graph.tsv"
        edges = [("a", "b", 1.5), ("b", "c", 2.0)]
        assert write_edgelist(path, edges, header="test graph") == 2
        loaded = read_edgelist(path)
        assert loaded == edges

    def test_two_column_lines_get_default_weight(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("# comment\na b\nc d 3.5\n\n% other comment\n")
        assert read_edgelist(path, default_weight=2.0) == [("a", "b", 2.0), ("c", "d", 3.5)]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("justonefield\n")
        with pytest.raises(StorageError):
            read_edgelist(path)

    def test_bad_weight_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a b notanumber\n")
        with pytest.raises(StorageError):
            read_edgelist(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            read_edgelist(tmp_path / "missing.tsv")


class TestJsonl:
    def test_stream_round_trip(self, tmp_path):
        stream = UpdateStream(
            [
                TimestampedEdge("a", "b", 1.0, 2.0, fraud_label="ring"),
                TimestampedEdge("b", "c", 2.0, 1.0),
            ]
        )
        path = tmp_path / "stream.jsonl"
        assert write_stream(path, stream) == 2
        loaded = read_stream(path)
        assert len(loaded) == 2
        assert loaded[0].fraud_label == "ring"
        assert loaded[1].weight == 1.0

    def test_records_round_trip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        rows = [{"a": 1}, {"b": "x"}]
        assert write_records(path, rows) == 2
        assert list(read_records(path)) == rows

    def test_missing_stream_file(self, tmp_path):
        with pytest.raises(StorageError):
            read_stream(tmp_path / "none.jsonl")

    def test_corrupt_stream_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(StorageError):
            read_stream(path)


class TestSnapshotStore:
    def test_graph_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        graph = DynamicGraph()
        graph.add_vertex("a", 1.5)
        graph.add_edge("a", "b", 2.0)
        store.save_graph("day1", graph)
        loaded = store.load_graph("day1")
        assert loaded.edge_weight("a", "b") == 2.0
        assert loaded.vertex_weight("a") == 1.5

    def test_stream_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        stream = UpdateStream([TimestampedEdge("a", "b", 0.5, 1.0)])
        store.save_stream("inc", stream)
        assert len(store.load_stream("inc")) == 1

    def test_result_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save_result("run", {"density": 4.5, "members": ["a", "b"]})
        assert store.load_result("run")["density"] == 4.5

    def test_manifest_listing_and_kinds(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save_result("r1", {})
        store.save_stream("s1", UpdateStream([]))
        assert store.list_snapshots() == ["r1", "s1"]
        assert store.list_snapshots(kind="result") == ["r1"]
        assert store.contains("s1") and not store.contains("nope")

    def test_missing_snapshot_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        with pytest.raises(StorageError):
            store.load_graph("missing")

    def test_wrong_kind_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save_result("thing", {})
        with pytest.raises(StorageError):
            store.load_stream("thing")

    def test_manifest_survives_reopen(self, tmp_path):
        root = tmp_path / "store"
        SnapshotStore(root).save_result("persisted", {"x": 1})
        assert SnapshotStore(root).load_result("persisted") == {"x": 1}


class TestJsonlStreaming:
    """The append-mode writer + tail reader behind the serving WAL."""

    def test_append_returns_advancing_offsets(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlWriter(path) as writer:
            first = writer.append({"n": 1})
            second = writer.append({"n": 2})
        assert 0 < first < second
        assert second == path.stat().st_size
        records, next_offset = tail(path)
        assert records == [{"n": 1}, {"n": 2}]
        assert next_offset == second

    def test_append_mode_never_truncates(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlWriter(path) as writer:
            writer.append({"n": 1})
        with JsonlWriter(path) as writer:
            assert writer.offset == path.stat().st_size  # resumed, not reset
            writer.append({"n": 2})
        records, _ = tail(path)
        assert records == [{"n": 1}, {"n": 2}]

    def test_fsync_flag_accepted(self, tmp_path):
        with JsonlWriter(tmp_path / "log.jsonl", fsync=True) as writer:
            writer.append({"durable": True})
        records, _ = tail(tmp_path / "log.jsonl")
        assert records == [{"durable": True}]

    def test_append_after_close_rejected(self, tmp_path):
        writer = JsonlWriter(tmp_path / "log.jsonl")
        writer.close()
        with pytest.raises(StorageError):
            writer.append({"n": 1})

    def test_tail_resumes_from_offset(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlWriter(path) as writer:
            mid = writer.append({"n": 1})
            writer.append({"n": 2})
        records, next_offset = tail(path, mid)
        assert records == [{"n": 2}]
        assert next_offset == path.stat().st_size
        # Resuming from the end reads nothing and stays put.
        assert tail(path, next_offset) == ([], next_offset)

    def test_truncate_at_discards_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlWriter(path) as writer:
            resume = writer.append({"n": 1})
        with path.open("ab") as handle:
            handle.write(b'{"n": 2')  # torn tail from a crash
        # Reopening at the recovered resume offset discards the fragment,
        # so the next record does not fuse with it.
        with JsonlWriter(path, truncate_at=resume) as writer:
            assert writer.offset == resume
            writer.append({"n": 3})
        records, _ = tail(path)
        assert records == [{"n": 1}, {"n": 3}]

    def test_tail_tolerates_unterminated_final_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlWriter(path) as writer:
            offset = writer.append({"n": 1})
        with path.open("ab") as handle:
            handle.write(b'{"n": 2')  # torn: no newline, incomplete JSON
        records, next_offset = tail(path)
        assert records == [{"n": 1}]
        assert next_offset == offset
        # Recovery resumes by appending past the torn tail's start.
        records, _ = tail(path, next_offset)
        assert records == []

    def test_tail_tolerates_torn_terminated_final_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlWriter(path) as writer:
            writer.append({"n": 1})
        with path.open("ab") as handle:
            handle.write(b'{"n": 2, "tr\n')  # torn payload that kept a newline
        records, _ = tail(path)
        assert records == [{"n": 1}]

    def test_tail_rejects_corruption_before_final_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\nnot json\n{"n": 3}\n')
        with pytest.raises(StorageError):
            tail(path)

    def test_tail_missing_file(self, tmp_path):
        assert tail(tmp_path / "none.jsonl") == ([], 0)
        with pytest.raises(StorageError):
            tail(tmp_path / "none.jsonl", offset=10)
