"""Tests for the storage layer (edge lists, JSON lines, snapshot store)."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.graph.graph import DynamicGraph
from repro.storage.edgelist import read_edgelist, write_edgelist
from repro.storage.jsonl import read_records, read_stream, write_records, write_stream
from repro.storage.store import SnapshotStore
from repro.streaming.stream import TimestampedEdge, UpdateStream


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "graph.tsv"
        edges = [("a", "b", 1.5), ("b", "c", 2.0)]
        assert write_edgelist(path, edges, header="test graph") == 2
        loaded = read_edgelist(path)
        assert loaded == edges

    def test_two_column_lines_get_default_weight(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("# comment\na b\nc d 3.5\n\n% other comment\n")
        assert read_edgelist(path, default_weight=2.0) == [("a", "b", 2.0), ("c", "d", 3.5)]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("justonefield\n")
        with pytest.raises(StorageError):
            read_edgelist(path)

    def test_bad_weight_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a b notanumber\n")
        with pytest.raises(StorageError):
            read_edgelist(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            read_edgelist(tmp_path / "missing.tsv")


class TestJsonl:
    def test_stream_round_trip(self, tmp_path):
        stream = UpdateStream(
            [
                TimestampedEdge("a", "b", 1.0, 2.0, fraud_label="ring"),
                TimestampedEdge("b", "c", 2.0, 1.0),
            ]
        )
        path = tmp_path / "stream.jsonl"
        assert write_stream(path, stream) == 2
        loaded = read_stream(path)
        assert len(loaded) == 2
        assert loaded[0].fraud_label == "ring"
        assert loaded[1].weight == 1.0

    def test_records_round_trip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        rows = [{"a": 1}, {"b": "x"}]
        assert write_records(path, rows) == 2
        assert list(read_records(path)) == rows

    def test_missing_stream_file(self, tmp_path):
        with pytest.raises(StorageError):
            read_stream(tmp_path / "none.jsonl")

    def test_corrupt_stream_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(StorageError):
            read_stream(path)


class TestSnapshotStore:
    def test_graph_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        graph = DynamicGraph()
        graph.add_vertex("a", 1.5)
        graph.add_edge("a", "b", 2.0)
        store.save_graph("day1", graph)
        loaded = store.load_graph("day1")
        assert loaded.edge_weight("a", "b") == 2.0
        assert loaded.vertex_weight("a") == 1.5

    def test_stream_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        stream = UpdateStream([TimestampedEdge("a", "b", 0.5, 1.0)])
        store.save_stream("inc", stream)
        assert len(store.load_stream("inc")) == 1

    def test_result_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save_result("run", {"density": 4.5, "members": ["a", "b"]})
        assert store.load_result("run")["density"] == 4.5

    def test_manifest_listing_and_kinds(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save_result("r1", {})
        store.save_stream("s1", UpdateStream([]))
        assert store.list_snapshots() == ["r1", "s1"]
        assert store.list_snapshots(kind="result") == ["r1"]
        assert store.contains("s1") and not store.contains("nope")

    def test_missing_snapshot_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        with pytest.raises(StorageError):
            store.load_graph("missing")

    def test_wrong_kind_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save_result("thing", {})
        with pytest.raises(StorageError):
            store.load_stream("thing")

    def test_manifest_survives_reopen(self, tmp_path):
        root = tmp_path / "store"
        SnapshotStore(root).save_result("persisted", {"x": 1})
        assert SnapshotStore(root).load_result("persisted") == {"x": 1}
