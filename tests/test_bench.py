"""Tests for the benchmark harness and the experiment runners (quick mode)."""

from __future__ import annotations

import json

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    build_engine,
    load_dataset,
    save_result,
)
from repro.bench.tables import render_markdown, render_table
from repro.bench.timing import Timer, summarize, time_call
from repro.peeling.semantics import dw_semantics


class TestTiming:
    def test_time_call(self):
        value, elapsed = time_call(lambda: sum(range(100)))
        assert value == 4950
        assert elapsed >= 0.0

    def test_timer(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed > 0.0

    def test_summarize(self):
        stats = summarize([0.001, 0.002, 0.003])
        assert stats.count == 3
        assert stats.total == pytest.approx(0.006)
        assert stats.mean == pytest.approx(0.002)
        assert stats.as_row()["mean (us)"] == pytest.approx(2000.0)

    def test_summarize_empty(self):
        assert summarize([]).count == 0


class TestTables:
    ROWS = [{"name": "a", "value": 1.5}, {"name": "b", "value": 2, "extra": "x"}]

    def test_render_table_alignment_and_missing_cells(self):
        text = render_table(self.ROWS, title="demo")
        assert "demo" in text
        assert "extra" in text
        assert "-" in text.splitlines()[-2]  # missing cell rendered as '-'

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_render_markdown(self):
        md = render_markdown(self.ROWS, title="demo")
        assert md.startswith("### demo")
        assert "| name | value | extra |" in md

    def test_explicit_columns(self):
        text = render_table(self.ROWS, columns=["value", "name"])
        header = text.splitlines()[0]
        assert header.index("value") < header.index("name")


class TestHarness:
    def test_quick_config(self):
        config = ExperimentConfig.quick_config(seed=3)
        assert config.quick and config.seed == 3
        assert all(name.endswith("-small") for name in config.datasets)
        assert config.grab_datasets()

    def test_semantics_instances(self):
        config = ExperimentConfig(semantics=["DG", "FD"])
        instances = dict(config.semantics_instances())
        assert set(instances) == {"DG", "FD"}
        assert instances["FD"].name == "FD"

    def test_load_dataset_memoised(self):
        first = load_dataset("amazon-small", seed=1)
        second = load_dataset("amazon-small", seed=1)
        assert first is second
        assert load_dataset("amazon-small", seed=2) is not first

    def test_build_engine(self):
        dataset = load_dataset("amazon-small", seed=1)
        spade = build_engine(dataset, dw_semantics())
        assert spade.graph.num_vertices() == len(dataset.vertices)

    def test_experiment_result_rendering_and_saving(self, tmp_path):
        result = ExperimentResult("exp", "a tiny experiment")
        result.add_row(metric=1.0, name="x")
        result.add_note("observation")
        assert "observation" in result.to_text()
        assert "exp" in result.to_markdown()

        config = ExperimentConfig(output_dir=tmp_path)
        path = save_result(result, config)
        assert path.exists()
        payload = json.loads((tmp_path / "exp.json").read_text())
        assert payload["rows"][0]["metric"] == 1.0

    def test_save_result_without_output_dir(self):
        result = ExperimentResult("exp", "desc")
        assert save_result(result, ExperimentConfig()) is None


QUICK = ExperimentConfig.quick_config(
    datasets=["grab1-small", "amazon-small"],
    max_increments=120,
    batch_sizes=[1, 25],
)


class TestExperiments:
    """Each experiment runner must produce rows in quick mode."""

    def test_registry_is_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table3",
            "table4",
            "table5",
            "fig9a",
            "fig9b",
            "fig10",
            "fig11",
            "fig12",
            "fig15",
        }

    def test_table3(self):
        result = ALL_EXPERIMENTS["table3"].run(QUICK)
        assert len(result.rows) == 2
        assert result.rows[0]["|V|"] > 0

    def test_fig9b(self):
        result = ALL_EXPERIMENTS["fig9b"].run(QUICK)
        assert result.rows
        assert any("slope" in note for note in result.notes)

    def test_fig10(self):
        result = ALL_EXPERIMENTS["fig10"].run(QUICK)
        assert len(result.rows) == 2 * 3
        for row in result.rows:
            assert row["speedup"] > 1.0

    def test_table4(self):
        config = ExperimentConfig.quick_config(
            datasets=["amazon-small"], max_increments=80, batch_sizes=[1, 20]
        )
        result = ALL_EXPERIMENTS["table4"].run(config)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row["|ΔE|=20 (us/edge)"] <= row["|ΔE|=1 (us/edge)"] * 3

    def test_table5(self):
        config = ExperimentConfig.quick_config(
            datasets=["grab1-small"], max_increments=150, semantics=["DW"]
        )
        result = ALL_EXPERIMENTS["table5"].run(config)
        assert len(result.rows) == 3
        policies = {row["policy"] for row in result.rows}
        assert any(p.endswith("G") for p in policies)

    def test_fig9a(self):
        config = ExperimentConfig.quick_config(
            datasets=["grab1-small"], max_increments=400, semantics=["DW"]
        )
        result = ALL_EXPERIMENTS["fig9a"].run(config)
        assert len(result.rows) == 3
        grouping_row = next(r for r in result.rows if r["policy"].endswith("G"))
        assert grouping_row["prevention ratio"] >= 0.0

    def test_fig11(self):
        config = ExperimentConfig.quick_config(
            datasets=["grab1-small"], max_increments=120, semantics=["DW"]
        )
        result = ALL_EXPERIMENTS["fig11"].run(config)
        assert {row["batch size"] for row in result.rows} == {1, 10, 50, 100}

    def test_fig12(self):
        config = ExperimentConfig.quick_config(datasets=["grab1-small"], semantics=["DW"])
        result = ALL_EXPERIMENTS["fig12"].run(config)
        assert len(result.rows) == 3
        assert {row["pattern"] for row in result.rows} == {
            "customer-merchant-collusion",
            "deal-hunter",
            "click-farming",
        }

    def test_fig15(self):
        config = ExperimentConfig.quick_config(datasets=["grab1-small"], semantics=["DW"])
        result = ALL_EXPERIMENTS["fig15"].run(config)
        assert len(result.rows) == 10
