"""Shared fixtures for the Spade reproduction test-suite.

The autouse ``graph_backend`` fixture parametrizes **every** test over the
two graph backends (``dict`` and ``array``) by flipping the process-wide
default backend: graph fixtures below build through
:func:`repro.graph.backend.create_graph`, and every ``materialize`` /
``Spade.load_edges`` call resolves the default at call time, so the same
assertions run against both implementations of the
:class:`~repro.graph.backend.GraphBackend` protocol.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.backend import create_graph, set_default_backend
from repro.peeling.semantics import dg_semantics, dw_semantics, fraudar_semantics
from repro.workloads.datasets import generate_dataset
from repro.workloads.grab import GrabConfig, generate_grab_dataset

from tests.helpers import random_weighted_edges


@pytest.fixture(params=["dict", "array"], autouse=True)
def graph_backend(request):
    """Run each test once per graph backend (process default flipped)."""
    previous = set_default_backend(request.param)
    yield request.param
    set_default_backend(previous)


@pytest.fixture
def dg():
    """DG (unweighted densest subgraph) semantics."""
    return dg_semantics()


@pytest.fixture
def dw():
    """DW (edge-weighted) semantics."""
    return dw_semantics()


@pytest.fixture
def fd():
    """FD (Fraudar) semantics."""
    return fraudar_semantics()


@pytest.fixture
def triangle_graph():
    """A triangle plus one pendant vertex: the community is the triangle."""
    graph = create_graph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 1.0)
    graph.add_edge("a", "c", 1.0)
    graph.add_edge("d", "a", 0.25)
    return graph


@pytest.fixture
def two_block_graph():
    """Two cliques of different density joined by a weak bridge."""
    graph = create_graph()
    heavy = ["h0", "h1", "h2", "h3"]
    light = ["l0", "l1", "l2"]
    for i, u in enumerate(heavy):
        for v in heavy[i + 1 :]:
            graph.add_edge(u, v, 3.0)
    for i, u in enumerate(light):
        for v in light[i + 1 :]:
            graph.add_edge(u, v, 1.0)
    graph.add_edge("h0", "l0", 0.5)
    return graph


@pytest.fixture
def random_graph():
    """A reproducible random weighted graph of moderate size."""
    rng = random.Random(12345)
    edges = random_weighted_edges(30, 90, rng)
    graph = create_graph()
    for src, dst, weight in edges:
        graph.add_edge(src, dst, weight)
    return graph


@pytest.fixture(scope="session")
def tiny_grab_dataset():
    """A very small Grab-like dataset with injected fraud (session-cached)."""
    config = GrabConfig(
        name="conftest-grab",
        num_customers=400,
        num_merchants=60,
        num_edges=2500,
        fraud_instances_per_pattern=1,
        seed=99,
    )
    return generate_grab_dataset(config)


@pytest.fixture(scope="session")
def small_public_dataset():
    """The registry's small Amazon-style dataset (session-cached)."""
    return generate_dataset("amazon-small", seed=3)
