"""Tests for the native C kernels: bit-identity, builds, and fallback.

The native kernels' contract is *bit-identity* with the python hot paths
— same IEEE-754 association order, same heap pop order — so the
differential tests here assert literal equality of peeling sequences,
weights and communities across ``kernel="python"`` / ``kernel="native"``
on all three built-in semantics, through inserts, batches, deletions and
the reorder path.  The operational tests pin the build layer (compile
cache reuse, ``status()`` reporting) and the failure policy: loud
:class:`~repro.errors.KernelUnavailableError` under ``kernel="native"``,
a single ``RuntimeWarning`` then silent python fallback under ``"auto"``
— including in a subprocess whose environment has no usable C compiler.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import textwrap
import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import native
from repro.api.config import EngineConfig
from repro.core.batch import insert_batch
from repro.core.deletion import delete_edges
from repro.core.insertion import insert_edge
from repro.core.state import PeelingState
from repro.errors import KernelUnavailableError
from repro.graph.array_graph import ArrayGraph
from repro.graph.csr import freeze_graph
from repro.native import build as native_build
from repro.peeling.semantics import dg_semantics, dw_semantics, fraudar_semantics
from repro.peeling.static import peel, peel_csr

from tests.helpers import dyadic_weight, random_weighted_edges

SRC_DIR = Path(repro.__file__).resolve().parent.parent

needs_native = pytest.mark.skipif(
    not native.available(), reason="native kernels unavailable (no C compiler?)"
)
needs_compiler = pytest.mark.skipif(
    native_build.find_compiler() is None, reason="no C compiler on PATH"
)

SEMANTICS = {"DG": dg_semantics, "DW": dw_semantics, "FD": fraudar_semantics}


def _assert_results_identical(a, b):
    assert list(a.order) == list(b.order)
    assert list(a.weights) == list(b.weights)
    assert a.total_suspiciousness == b.total_suspiciousness
    assert a.best_density == b.best_density
    assert a.community == b.community


def _assert_states_identical(left: PeelingState, right: PeelingState) -> None:
    left.check_consistency()
    right.check_consistency()
    assert list(left.order) == list(right.order)
    assert np.array_equal(left.weights, right.weights)
    assert left.total == right.total
    lc, rc = left.community(), right.community()
    assert lc.vertices == rc.vertices
    assert lc.density == rc.density


@needs_native
class TestStaticDifferential:
    @pytest.mark.parametrize("name", ["DG", "DW", "FD"])
    @pytest.mark.parametrize("seed", [3, 41])
    def test_peel_csr_bit_identical(self, name, seed):
        rng = random.Random(seed)
        semantics = SEMANTICS[name]()
        edges = random_weighted_edges(40, 220, rng)
        graph = semantics.materialize(edges)
        snapshot = freeze_graph(graph)
        python = peel_csr(snapshot, name, kernel="python")
        compiled = peel_csr(snapshot, name, kernel="native")
        _assert_results_identical(python, compiled)
        # And both agree with the heap peel over the mutable graph.
        _assert_results_identical(python, peel(graph, name))

    def test_auto_matches_python(self):
        rng = random.Random(9)
        semantics = dw_semantics()
        snapshot = freeze_graph(semantics.materialize(random_weighted_edges(25, 120, rng)))
        _assert_results_identical(
            peel_csr(snapshot, "DW", kernel="auto"),
            peel_csr(snapshot, "DW", kernel="python"),
        )

    def test_singleton_and_empty_graphs(self):
        semantics = dw_semantics()
        for edges in ([], [("a", "b", 1.5)]):
            snapshot = freeze_graph(semantics.materialize(edges))
            _assert_results_identical(
                peel_csr(snapshot, "DW", kernel="python"),
                peel_csr(snapshot, "DW", kernel="native"),
            )


@needs_native
class TestIncrementalDifferential:
    """kernel="python" vs kernel="native" states on the same update stream."""

    def _paired_states(self, semantics, initial):
        states = []
        for kernel in ("python", "native"):
            graph = semantics.materialize(initial)
            states.append(PeelingState(graph, semantics, kernel=kernel))
        return states

    @pytest.mark.parametrize("name", ["DG", "DW", "FD"])
    def test_insert_stream(self, name):
        rng = random.Random(17)
        semantics = SEMANTICS[name]()
        edges = random_weighted_edges(24, 120, rng)
        python_state, native_state = self._paired_states(semantics, edges[:60])
        _assert_states_identical(python_state, native_state)
        for src, dst, weight in edges[60:]:
            insert_edge(python_state, src, dst, weight)
            insert_edge(native_state, src, dst, weight)
            _assert_states_identical(python_state, native_state)

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_mixed_stream_property(self, seed):
        """Random insert/batch/delete streams stay bit-identical throughout."""
        rng = random.Random(seed)
        semantics = dw_semantics()
        edges = random_weighted_edges(26, 140, rng)
        python_state, native_state = self._paired_states(semantics, edges[:70])
        live = list(edges[:70])
        cursor = 70
        for _round in range(10):
            action = rng.choice(["insert", "batch", "delete"])
            if action == "insert" and cursor < len(edges):
                src, dst, weight = edges[cursor]
                cursor += 1
                insert_edge(python_state, src, dst, weight)
                insert_edge(native_state, src, dst, weight)
                live.append((src, dst, weight))
            elif action == "batch":
                batch = [
                    (rng.randrange(26, 34), rng.randrange(26), dyadic_weight(rng))
                    for _ in range(rng.randint(1, 5))
                ]
                insert_batch(python_state, list(batch))
                insert_batch(native_state, list(batch))
                live.extend(batch)
            elif live:
                src, dst, _w = live.pop(rng.randrange(len(live)))
                live = [e for e in live if (e[0], e[1]) != (src, dst)]
                delete_edges(python_state, [(src, dst)])
                delete_edges(native_state, [(src, dst)])
            _assert_states_identical(python_state, native_state)

    def test_engine_config_kernel_round_trip(self):
        rng = random.Random(23)
        edges = random_weighted_edges(18, 80, rng)
        communities = []
        for kernel in ("python", "native", "auto"):
            config = EngineConfig(semantics="DW", kernel=kernel)
            assert EngineConfig.from_dict(config.to_dict()) == config
            engine = config.build()
            engine.load_edges(edges[:50])
            for src, dst, weight in edges[50:]:
                engine.insert_edge(src, dst, weight)
            communities.append(engine.detect())
        assert communities[0].vertices == communities[1].vertices == communities[2].vertices
        assert communities[0].density == communities[1].density == communities[2].density


@needs_native
class TestArrayGraphNativeTables:
    """The incremental pointer tables must track every pool mutation."""

    def _assert_tables_match(self, graph: ArrayGraph) -> None:
        out_p, out_w, out_len, in_p, in_w, in_len, pooled = graph.native_adjacency()
        for vid in range(pooled):
            ids, weights = graph.incident_arrays_id(vid)
            assert out_len[vid] + in_len[vid] == len(ids)

    def test_tables_survive_growth_and_removal(self):
        rng = random.Random(31)
        graph = ArrayGraph()
        graph.add_edge("hub", "v0", 1.0)
        graph.native_adjacency()  # build the tables early, then mutate
        # Append enough hub edges to force several pool reallocs.
        for i in range(1, 80):
            graph.add_edge("hub", f"v{i}", 1.0 + i / 64.0)
            graph.add_edge(f"v{i}", "hub", 0.5)
        self._assert_tables_match(graph)
        for i in range(0, 40, 3):
            graph.remove_edge("hub", f"v{i}")
        self._assert_tables_match(graph)
        # New vertices after the build grow the id-indexed tables.
        for i in range(30):
            graph.add_edge(f"x{i}", f"y{i}", dyadic_weight(rng))
        self._assert_tables_match(graph)

    def test_clone_disables_tables(self):
        graph = ArrayGraph(edges=[("a", "b", 1.0), ("b", "c", 2.0)])
        graph.native_adjacency()
        clone = graph.copy()
        clone.add_edge("c", "a", 4.0)
        self._assert_tables_match(clone)
        self._assert_tables_match(graph)


class TestBuildLayer:
    @needs_compiler
    def test_compile_cache_reuse(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        cold = native_build.ensure_built()
        assert cold.ok, cold.error
        assert not cold.cached
        assert cold.build_ms > 0
        warm = native_build.ensure_built()
        assert warm.ok
        assert warm.cached
        assert warm.so_path == cold.so_path

    def test_missing_compiler_reports_instead_of_raising(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CC", str(tmp_path / "missing-cc"))
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        result = native_build.ensure_built()
        assert not result.ok
        assert "no C compiler" in result.error

    def test_status_keys(self):
        report = native.status()
        for key in (
            "default_kernel",
            "available",
            "cc",
            "cache_dir",
            "peel",
            "reorder",
            "reason",
            "so_path",
        ):
            assert key in report
        assert report["default_kernel"] in native.VALID_KERNELS
        if report["available"]:
            assert report["peel"] is True
            assert report["so_path"]
            assert report["reason"] is None


class TestFailurePolicy:
    @pytest.fixture(autouse=True)
    def _unavailable(self, monkeypatch):
        """Simulate kernel unavailability without touching the filesystem."""
        monkeypatch.setattr(native, "get_kernels", lambda: None)
        monkeypatch.setattr(native, "_warned_fallback", False)

    def test_native_request_fails_loud(self):
        with pytest.raises(KernelUnavailableError) as excinfo:
            native.resolve_kernel("native")
        assert excinfo.value.reason

    def test_peel_csr_native_fails_loud(self):
        snapshot = freeze_graph(dw_semantics().materialize([("a", "b", 1.0)]))
        with pytest.raises(KernelUnavailableError):
            peel_csr(snapshot, "DW", kernel="native")

    def test_auto_warns_once_then_serves_python(self):
        snapshot = freeze_graph(
            dw_semantics().materialize([("a", "b", 2.0), ("b", "c", 1.0), ("a", "c", 1.5)])
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = peel_csr(snapshot, "DW", kernel="auto")
            second = peel_csr(snapshot, "DW", kernel="auto")
        _assert_results_identical(first, second)
        fallback = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "native kernels unavailable" in str(w.message)
        ]
        assert len(fallback) == 1

    def test_python_request_never_touches_native(self):
        assert native.resolve_kernel("python") == "python"


class TestNoCompilerSubprocess:
    """A fresh process without a usable ``cc``: auto serves, native raises."""

    def test_auto_serves_and_native_raises(self, tmp_path):
        code = textwrap.dedent(
            """
            import warnings

            from repro import native
            from repro.errors import KernelUnavailableError
            from repro.graph.csr import freeze_graph
            from repro.peeling.semantics import dw_semantics
            from repro.peeling.static import peel_csr

            assert not native.available()
            snapshot = freeze_graph(dw_semantics().materialize(
                [("a", "b", 2.0), ("b", "c", 1.0), ("a", "c", 1.5)]
            ))
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = peel_csr(snapshot, "DW", kernel="auto")
            assert len(result.order) == 3
            assert any(
                "native kernels unavailable" in str(w.message) for w in caught
            ), "auto fallback must warn"
            try:
                peel_csr(snapshot, "DW", kernel="native")
            except KernelUnavailableError as exc:
                assert "no C compiler" in str(exc)
                print("SUBPROCESS-OK")
            else:
                raise SystemExit("kernel='native' did not fail loud")
            """
        )
        env = dict(os.environ)
        env["REPRO_NATIVE_CC"] = str(tmp_path / "missing-cc")
        env["REPRO_NATIVE_CACHE"] = str(tmp_path / "empty-cache")
        env.pop("REPRO_KERNEL", None)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "SUBPROCESS-OK" in proc.stdout
