"""End-to-end integration tests on generated datasets."""

from __future__ import annotations

import pytest

from repro import Spade, dw_semantics, fraudar_semantics
from repro.analysis.communities import best_match
from repro.streaming.policies import BatchPolicy, EdgeGroupingPolicy, PerEdgePolicy
from repro.streaming.replay import replay_stream

from tests.helpers import assert_valid_state


class TestGrabEndToEnd:
    def test_full_replay_keeps_state_equivalent_to_static(self, tiny_grab_dataset, dw):
        spade = Spade(dw)
        spade.load_graph(tiny_grab_dataset.initial_graph(dw))
        replay_stream(spade, tiny_grab_dataset.increments[:400], BatchPolicy(40))
        assert_valid_state(spade.state)
        spade.state.check_consistency()

    def test_injected_collusion_is_eventually_the_densest_community(self, tiny_grab_dataset, dw):
        spade = Spade(dw)
        spade.load_graph(tiny_grab_dataset.initial_graph(dw))
        spade.insert_batch_edges([e.as_update() for e in tiny_grab_dataset.increments])
        truth = tiny_grab_dataset.fraud_community_map()
        match = best_match(spade.detect().vertices, truth)
        assert match is not None and match.f1 > 0.8

    def test_enumeration_recovers_multiple_injected_instances(self, tiny_grab_dataset, dw):
        spade = Spade(dw)
        spade.load_graph(tiny_grab_dataset.initial_graph(dw))
        spade.insert_batch_edges([e.as_update() for e in tiny_grab_dataset.increments])
        truth = tiny_grab_dataset.fraud_community_map()
        recovered = set()
        for instance in spade.enumerate_frauds(max_instances=6, min_density=1.0):
            match = best_match(instance.vertices, truth)
            if match is not None and match.f1 > 0.6:
                recovered.add(match.label)
        assert len(recovered) >= 2

    def test_grouping_policy_detects_fraud_earlier_than_large_batches(self, tiny_grab_dataset, dw):
        truth = tiny_grab_dataset.fraud_community_map()

        def detection_times(policy):
            spade = Spade(dw)
            spade.load_graph(tiny_grab_dataset.initial_graph(dw))
            report = replay_stream(
                spade,
                tiny_grab_dataset.increments,
                policy,
                fraud_communities=truth,
                ban_detected=True,
            )
            return report.detection_times, report.metrics.prevention_ratio

    # The grouping policy responds to urgent edges immediately, so its
    # prevention ratio must dominate the one of a very large fixed batch.
        grouped_times, grouped_ratio = detection_times(EdgeGroupingPolicy())
        batched_times, batched_ratio = detection_times(BatchPolicy(2000))
        assert grouped_ratio >= batched_ratio
        assert grouped_times, "grouping must detect at least one injected community"

    def test_fraudar_semantics_on_public_dataset(self, small_public_dataset):
        fd = fraudar_semantics()
        spade = Spade(fd)
        spade.load_graph(small_public_dataset.initial_graph(fd))
        report = replay_stream(spade, small_public_dataset.increments[:150], PerEdgePolicy())
        assert report.metrics.edges == min(150, len(small_public_dataset.increments))
        assert_valid_state(spade.state)

    def test_per_edge_and_batch_replay_reach_identical_graphs(self, small_public_dataset, dw):
        stream = small_public_dataset.increments[:120]

        spade_a = Spade(dw)
        spade_a.load_graph(small_public_dataset.initial_graph(dw))
        replay_stream(spade_a, stream, PerEdgePolicy())

        spade_b = Spade(dw)
        spade_b.load_graph(small_public_dataset.initial_graph(dw))
        replay_stream(spade_b, stream, BatchPolicy(30))

        assert spade_a.graph == spade_b.graph
        assert spade_a.detect().vertices == spade_b.detect().vertices

    def test_incremental_is_much_faster_than_static_repeel(self, tiny_grab_dataset, dw):
        import time

        from repro.peeling.static import peel

        graph = tiny_grab_dataset.initial_graph(dw)
        began = time.perf_counter()
        peel(graph, "DW")
        static_seconds = time.perf_counter() - began

        spade = Spade(dw)
        spade.load_graph(tiny_grab_dataset.initial_graph(dw))
        report = replay_stream(spade, tiny_grab_dataset.increments[:200], PerEdgePolicy())
        per_edge = report.metrics.mean_elapsed_per_edge
        assert per_edge < static_seconds
