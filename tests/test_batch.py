"""Unit tests for batched insertion maintenance (Algorithm 2)."""

from __future__ import annotations

import random

import pytest

from repro.core.batch import insert_batch, normalize_updates
from repro.core.insertion import insert_edge
from repro.core.state import PeelingState
from repro.graph.delta import EdgeUpdate, GraphDelta

from tests.helpers import assert_matches_static, build_state, random_weighted_edges


class TestNormalizeUpdates:
    def test_accepts_tuples(self):
        updates = normalize_updates([("a", "b"), ("b", "c", 2.0)])
        assert [u.edge for u in updates] == [("a", "b"), ("b", "c")]
        assert updates[1].weight == 2.0

    def test_accepts_edge_updates_and_delta(self):
        delta = GraphDelta.from_edges([("a", "b", 1.0)])
        assert [u.edge for u in normalize_updates(delta)] == [("a", "b")]
        assert [u.edge for u in normalize_updates([EdgeUpdate("x", "y")])] == [("x", "y")]

    def test_accepts_lists_and_general_sequences(self):
        # JSONL replay hands back lists, not tuples.
        updates = normalize_updates([["a", "b"], ["b", "c", 2.0], ("c", "d", 3)])
        assert [u.edge for u in updates] == [("a", "b"), ("b", "c"), ("c", "d")]
        assert updates[1].weight == 2.0
        assert updates[2].weight == 3.0

    def test_list_batch_round_trips_through_insert_batch(self):
        state = build_state([(0, 1, 1.0), (1, 2, 2.0)])
        insert_batch(state, [[0, 2, 0.5], [2, 3, 1.25]])
        assert state.graph.has_edge(0, 2) and state.graph.has_edge(2, 3)
        assert_matches_static(state)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            normalize_updates([("a",)])
        with pytest.raises(TypeError):
            normalize_updates([["a", "b", 1.0, "extra"]])
        with pytest.raises(TypeError):
            normalize_updates(["ab"])  # strings are not edge sequences
        with pytest.raises(TypeError):
            normalize_updates([42])


class TestBatchInsertion:
    def test_empty_batch_is_a_noop(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        before = list(state.order)
        stats = insert_batch(state, [])
        assert list(state.order) == before
        assert stats.affected_area == 0

    def test_deletions_rejected(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        with pytest.raises(ValueError):
            insert_batch(state, [EdgeUpdate("a", "b", delete=True)])

    def test_batch_equivalent_to_static(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        insert_batch(state, [("l0", "l2", 2.0), ("l1", "l0", 2.0), ("h0", "l1", 0.5)])
        assert_matches_static(state)

    def test_batch_with_new_vertices(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        insert_batch(
            state,
            [
                EdgeUpdate("n1", "n2", 3.0, src_weight=0.5),
                EdgeUpdate("n2", "h0", 1.0),
                EdgeUpdate("n3", "n1", 2.0),
            ],
        )
        assert {"n1", "n2", "n3"} <= set(state.order)
        assert state.graph.vertex_weight("n1") == 0.5
        assert_matches_static(state)

    def test_batch_equals_sequential_single_insertions(self):
        rng = random.Random(21)
        all_edges = random_weighted_edges(18, 60, rng)
        initial, increments = all_edges[:-10], all_edges[-10:]

        batch_state = build_state(initial)
        insert_batch(batch_state, increments)

        sequential_state = build_state(initial)
        for src, dst, weight in increments:
            insert_edge(sequential_state, src, dst, weight)

        assert list(batch_state.order) == list(sequential_state.order)
        assert batch_state.community().vertices == sequential_state.community().vertices

    def test_batch_cheaper_than_sequential_on_overlapping_updates(self):
        rng = random.Random(4)
        all_edges = random_weighted_edges(60, 300, rng)
        initial, increments = all_edges[:200], all_edges[200:]

        sequential_state = build_state(initial)
        sequential_cost = 0
        for src, dst, weight in increments:
            sequential_cost += insert_edge(sequential_state, src, dst, weight).affected_area

        batch_state = build_state(initial)
        batch_cost = insert_batch(batch_state, increments).affected_area

        # Algorithm 2's whole point: one pass over the affected area instead
        # of one pass per edge.
        assert batch_cost < sequential_cost

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_batches_match_static(self, seed):
        rng = random.Random(300 + seed)
        n = rng.randint(8, 30)
        all_edges = random_weighted_edges(n, rng.randint(10, 80), rng)
        cut = rng.randint(1, max(1, len(all_edges) // 3))
        state = build_state(all_edges[:-cut])
        insert_batch(state, all_edges[-cut:])
        assert_matches_static(state)

    def test_large_single_batch_into_sparse_graph(self):
        rng = random.Random(8)
        all_edges = random_weighted_edges(50, 220, rng)
        state = build_state(all_edges[:20])
        insert_batch(state, all_edges[20:])
        assert_matches_static(state)

    def test_consecutive_batches(self):
        rng = random.Random(15)
        all_edges = random_weighted_edges(30, 150, rng)
        state = build_state(all_edges[:60])
        insert_batch(state, all_edges[60:100])
        state.check_consistency()
        insert_batch(state, all_edges[100:])
        assert_matches_static(state)
