"""Unit tests for the maintained peeling state."""

from __future__ import annotations

import random

import pytest

from repro.core.state import PeelingState
from repro.errors import StateError
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import dw_semantics, subset_density
from repro.peeling.static import peel

from tests.helpers import build_state, random_weighted_edges


class TestConstruction:
    def test_state_runs_static_peel_when_no_result_given(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        assert len(state) == two_block_graph.num_vertices()
        assert state.community().vertices == peel(two_block_graph, "DW").community

    def test_state_accepts_precomputed_result(self, two_block_graph, dw):
        result = peel(two_block_graph, "DW")
        state = PeelingState(two_block_graph, dw, result=result)
        assert list(state.order) == list(result.order)

    def test_mismatched_result_rejected(self, two_block_graph, triangle_graph, dw):
        wrong = peel(triangle_graph, "DW")
        with pytest.raises(StateError):
            PeelingState(two_block_graph, dw, result=wrong)


class TestPositions:
    def test_position_roundtrip(self, random_graph, dw):
        state = PeelingState(random_graph, dw)
        for index, vertex in enumerate(state.order):
            assert state.position(vertex) == index

    def test_position_unknown_vertex(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        with pytest.raises(StateError):
            state.position("ghost")

    def test_prepend_vertex_shifts_positions(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        old_first = state.order[0]
        triangle_graph.add_vertex("new", 0.0)
        state.prepend_vertex("new", 0.0)
        assert state.position("new") == 0
        assert state.position(old_first) == 1
        assert len(state.order) == len(state.weights)

    def test_prepend_duplicate_rejected(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        with pytest.raises(StateError):
            state.prepend_vertex(state.order[0], 0.0)

    def test_contains(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        assert "a" in state
        assert "ghost" not in state


class TestSegmentsAndTotals:
    def test_write_segment_updates_positions_and_weights(self, random_graph, dw):
        state = PeelingState(random_graph, dw)
        segment = list(state.order[2:5])
        reversed_segment = list(reversed(segment))
        weights = [float(state.weights[state.position(v)]) for v in reversed_segment]
        state.write_segment(2, reversed_segment, weights)
        assert list(state.order[2:5]) == reversed_segment
        for index, vertex in enumerate(reversed_segment, start=2):
            assert state.position(vertex) == index

    def test_write_segment_out_of_bounds(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        with pytest.raises(StateError):
            state.write_segment(len(state.order), ["a", "b"], [0.0, 0.0])

    def test_add_total_invalidates_cache(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        before = state.community().density
        state.add_total(100.0)
        after = state.community().density
        assert after > before

    def test_full_set_weight(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        assert state.full_set_weight("d") == pytest.approx(0.25)
        assert state.full_set_weight("a") == pytest.approx(2.25)


class TestCommunityAndExport:
    def test_community_matches_static(self, random_graph, dw):
        state = PeelingState(random_graph, dw)
        static = peel(random_graph, "DW")
        community = state.community()
        assert community.vertices == static.community
        assert community.density == pytest.approx(static.best_density)
        assert community.peel_index == static.best_index

    def test_community_density_matches_direct_evaluation(self, random_graph, dw):
        state = PeelingState(random_graph, dw)
        community = state.community()
        assert community.density == pytest.approx(
            subset_density(random_graph, community.vertices)
        )

    def test_community_membership_protocol(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        community = state.community()
        assert "h0" in community
        assert "l2" not in community

    def test_density_profile_matches_result(self, random_graph, dw):
        state = PeelingState(random_graph, dw)
        profile = state.density_profile()
        result_densities = state.as_result().densities()
        assert profile == pytest.approx(result_densities)

    def test_as_result_round_trip(self, random_graph, dw):
        state = PeelingState(random_graph, dw)
        result = state.as_result()
        assert isinstance(result, PeelingResult)
        assert list(result.order) == list(state.order)
        assert result.semantics_name == "DW"

    def test_check_consistency_detects_total_drift(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        state.total += 5.0
        with pytest.raises(StateError):
            state.check_consistency()

    def test_check_consistency_detects_missing_vertex(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        triangle_graph.add_vertex("extra")
        with pytest.raises(StateError):
            state.check_consistency()


class TestTieBreakRegistry:
    def test_register_vertex_appends_new_index(self, triangle_graph, dw):
        state = PeelingState(triangle_graph, dw)
        size = len(state.tie_break)
        state.register_vertex("brand-new")
        assert state.tie_break["brand-new"] == size
        state.register_vertex("brand-new")
        assert len(state.tie_break) == size + 1

    def test_tie_break_matches_graph_insertion_order(self):
        rng = random.Random(0)
        state = build_state(random_weighted_edges(15, 40, rng))
        order = list(state.graph.vertices())
        for index, vertex in enumerate(order):
            assert state.tie_break[vertex] == index
