"""Unit tests for edge grouping (benign vs urgent, Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.core.grouping import EdgeGrouper, is_benign
from repro.core.state import PeelingState
from repro.graph.delta import EdgeUpdate
from repro.peeling.semantics import subset_density

from tests.helpers import assert_matches_static


class TestIsBenign:
    def test_light_edge_between_light_vertices_is_benign(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        # l1 and l2 have tiny full-set weights; the community density is 9.
        assert is_benign(state, "l1", "l2", 0.1)

    def test_heavy_edge_is_urgent(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        density = state.community().density
        assert not is_benign(state, "l1", "l2", density + 1.0)

    def test_edge_touching_community_member_is_urgent(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        # h0 is in the dense community and already carries weight >= g(S_P).
        assert not is_benign(state, "h0", "l2", 0.1)

    def test_unknown_endpoints_use_zero_base_weight(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        assert is_benign(state, "stranger1", "stranger2", 0.1)

    def test_explicit_density_override(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        assert not is_benign(state, "l1", "l2", 0.1, community_density=0.05)


class TestBenignEdgeLemmas:
    def test_lemma_4_4_benign_edge_does_not_create_denser_community(self, two_block_graph, dw):
        """Lemma 4.4: after a benign insertion, either the endpoints stay out
        of the community or the community density dropped."""
        state = PeelingState(two_block_graph, dw)
        density_before = state.community().density
        edge_weight = 0.1
        assert is_benign(state, "l1", "l2", edge_weight)

        from repro.core.insertion import insert_edge

        insert_edge(state, "l1", "l2", edge_weight)
        community = state.community()
        endpoints_out = "l1" not in community.vertices and "l2" not in community.vertices
        assert endpoints_out or community.density < density_before

    def test_urgent_edge_can_change_the_community(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        from repro.core.insertion import insert_edge

        for _ in range(5):
            insert_edge(state, "l0", "l1", 20.0)
        assert "l0" in state.community().vertices


class TestEdgeGrouper:
    def test_benign_edges_are_buffered(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        grouper = EdgeGrouper(state)
        result = grouper.offer(EdgeUpdate("l2", "l0", 0.1))
        assert result.flushed_edges == 0
        assert grouper.pending() == 1
        assert not state.graph.has_edge("l2", "l0")

    def test_urgent_edge_flushes_whole_buffer(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        grouper = EdgeGrouper(state)
        grouper.offer(EdgeUpdate("l2", "l0", 0.1))
        result = grouper.offer(EdgeUpdate("h0", "h2", 5.0))
        assert result.flushed_edges == 2
        assert result.urgent_trigger
        assert grouper.pending() == 0
        assert state.graph.has_edge("l2", "l0")
        assert state.graph.has_edge("h0", "h2")
        assert_matches_static(state)

    def test_max_buffer_forces_flush(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        grouper = EdgeGrouper(state, max_buffer=3)
        grouper.offer(EdgeUpdate("l0", "l1", 0.05))
        grouper.offer(EdgeUpdate("l1", "l2", 0.05))
        result = grouper.offer(EdgeUpdate("l2", "l0", 0.05))
        assert result.flushed_edges == 3
        assert not result.urgent_trigger

    def test_max_delay_forces_flush(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        grouper = EdgeGrouper(state, max_delay=10.0)
        grouper.offer(EdgeUpdate("l0", "l1", 0.05), timestamp=0.0)
        result = grouper.offer(EdgeUpdate("l1", "l2", 0.05), timestamp=11.0)
        assert result.flushed_edges == 2

    def test_manual_flush(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        grouper = EdgeGrouper(state)
        grouper.offer(EdgeUpdate("l0", "l2", 0.05))
        result = grouper.flush()
        assert result.flushed_edges == 1
        assert grouper.flush().flushed_edges == 0

    def test_counters(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        grouper = EdgeGrouper(state)
        grouper.offer(EdgeUpdate("l0", "l2", 0.05))
        grouper.offer(EdgeUpdate("h0", "h1", 5.0))
        assert grouper.total_buffered == 2
        assert grouper.total_flushes == 1
        assert grouper.urgent_flushes == 1

    def test_deferred_edges_do_not_change_detection(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        grouper = EdgeGrouper(state)
        before = state.community().vertices
        grouper.offer(EdgeUpdate("l0", "l1", 0.05))
        assert state.community().vertices == before

    def test_state_matches_static_after_mixed_traffic(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        grouper = EdgeGrouper(state)
        updates = [
            EdgeUpdate("l0", "l1", 0.25),
            EdgeUpdate("l1", "l2", 0.25),
            EdgeUpdate("h0", "h1", 4.0),
            EdgeUpdate("l2", "l0", 0.25),
            EdgeUpdate("h2", "h3", 4.0),
        ]
        for update in updates:
            grouper.offer(update)
        grouper.flush()
        assert_matches_static(state)
