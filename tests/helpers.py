"""Test helpers: random graph construction and equivalence assertions.

The equivalence tests between the static and the incremental algorithms use
*dyadic* random weights (integer multiples of 1/64).  Sums and differences
of such weights are exact in binary floating point, so two computation
paths that are mathematically equal produce bit-identical values; ties are
then true ties and the shared tie-breaking rule makes the static and
incremental peeling sequences literally identical, which is the strongest
possible assertion.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.core.state import PeelingState
from repro.graph.graph import DynamicGraph
from repro.peeling.guarantees import is_valid_peeling_sequence
from repro.peeling.semantics import PeelingSemantics, dw_semantics
from repro.peeling.static import peel

__all__ = [
    "dyadic_weight",
    "random_weighted_edges",
    "build_state",
    "assert_matches_static",
    "assert_valid_state",
]


def dyadic_weight(rng: random.Random, low_units: int = 1, high_units: int = 320) -> float:
    """Return a random weight that is an exact multiple of 1/64."""
    return rng.randint(low_units, high_units) / 64.0


def random_weighted_edges(
    num_vertices: int,
    num_edges: int,
    rng: random.Random,
    dyadic: bool = True,
) -> List[Tuple[int, int, float]]:
    """Generate a random simple directed edge list with positive weights."""
    edges = set()
    out: List[Tuple[int, int, float]] = []
    attempts = 0
    max_possible = num_vertices * (num_vertices - 1)
    target = min(num_edges, max_possible)
    while len(out) < target and attempts < 50 * num_edges + 100:
        attempts += 1
        src, dst = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if src == dst or (src, dst) in edges:
            continue
        edges.add((src, dst))
        weight = dyadic_weight(rng) if dyadic else rng.uniform(0.05, 5.0)
        out.append((src, dst, weight))
    return out


def build_state(
    initial_edges: Sequence[Tuple[int, int, float]],
    semantics: PeelingSemantics = None,
) -> PeelingState:
    """Materialise the initial graph and build a peeling state for it."""
    semantics = semantics or dw_semantics()
    graph = semantics.materialize(initial_edges)
    return PeelingState(graph, semantics)


def assert_valid_state(state: PeelingState) -> None:
    """Assert that the state's sequence is a valid greedy peel of its graph."""
    state.check_consistency()
    check = is_valid_peeling_sequence(state.graph, state.order, list(state.weights))
    assert check.valid, check.message


def assert_matches_static(state: PeelingState, exact: bool = True) -> None:
    """Assert that the maintained sequence matches a from-scratch run.

    With ``exact=True`` (dyadic weights) the sequences must be identical;
    otherwise the maintained sequence only has to be a valid greedy peel
    with the same community density up to floating-point noise.
    """
    assert_valid_state(state)
    static = peel(state.graph, state.semantics.name)
    incremental = state.as_result()
    if exact:
        assert list(static.order) == list(incremental.order)
        assert static.best_density == incremental.best_density
        assert static.community == incremental.community
    else:
        assert abs(static.best_density - incremental.best_density) <= 1e-6 * max(
            1.0, abs(static.best_density)
        )
