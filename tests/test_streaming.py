"""Tests for the streaming substrate: streams, clock, metrics, policies."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.streaming.clock import SimulatedClock
from repro.streaming.metrics import LatencyTracker, PreventionTracker
from repro.streaming.policies import (
    BatchPolicy,
    EdgeGroupingPolicy,
    PerEdgePolicy,
    PeriodicStaticPolicy,
)
from repro.streaming.stream import TimestampedEdge, UpdateStream


def make_stream(count: int = 10, fraud_every: int = 0) -> UpdateStream:
    edges = []
    for i in range(count):
        label = "ring" if fraud_every and i % fraud_every == 0 else None
        edges.append(TimestampedEdge(f"c{i}", f"m{i % 3}", float(i), 1.0 + i, fraud_label=label))
    return UpdateStream(edges)


class TestTimestampedEdge:
    def test_as_update(self):
        edge = TimestampedEdge("a", "b", 5.0, 2.0, src_prior=1.0)
        update = edge.as_update()
        assert update.edge == ("a", "b")
        assert update.weight == 2.0
        assert update.src_weight == 1.0

    def test_is_fraud(self):
        assert TimestampedEdge("a", "b", 0.0, fraud_label="x").is_fraud
        assert not TimestampedEdge("a", "b", 0.0).is_fraud

    def test_shifted(self):
        edge = TimestampedEdge("a", "b", 5.0)
        assert edge.shifted(2.5).timestamp == 7.5


class TestUpdateStream:
    def test_rejects_unordered_timestamps(self):
        with pytest.raises(StreamError):
            UpdateStream([TimestampedEdge("a", "b", 2.0), TimestampedEdge("b", "c", 1.0)])

    def test_sort_flag_orders_edges(self):
        stream = UpdateStream(
            [TimestampedEdge("a", "b", 2.0), TimestampedEdge("b", "c", 1.0)], sort=True
        )
        assert [e.timestamp for e in stream] == [1.0, 2.0]

    def test_len_iter_getitem(self):
        stream = make_stream(5)
        assert len(stream) == 5
        assert stream[0].src == "c0"
        assert len(stream[1:3]) == 2
        assert isinstance(stream[1:3], UpdateStream)

    def test_span(self):
        assert make_stream(5).span() == (0.0, 4.0)
        assert UpdateStream([]).span() == (0.0, 0.0)

    def test_fraud_views(self):
        stream = make_stream(10, fraud_every=3)
        assert len(stream.fraud_edges()) == 4
        assert stream.fraud_labels() == ["ring"]

    def test_batches(self):
        batches = list(make_stream(10).batches(4))
        assert [len(b) for b in batches] == [4, 4, 2]
        with pytest.raises(ValueError):
            list(make_stream(3).batches(0))

    def test_window(self):
        window = make_stream(10).window(2.0, 5.0)
        assert [e.timestamp for e in window] == [2.0, 3.0, 4.0]

    def test_merged_with(self):
        merged = make_stream(3).merged_with(make_stream(3))
        assert len(merged) == 6

    def test_from_tuples(self):
        stream = UpdateStream.from_tuples([("a", "b", 2.0), ("b", "c", 1.0, 3.5)])
        assert len(stream) == 2
        assert stream[1].weight == 3.5 or stream[0].weight == 3.5

    def test_as_timestamped_updates(self):
        pairs = make_stream(3).as_timestamped_updates()
        assert len(pairs) == 3
        assert pairs[0][0] == 0.0


class TestSimulatedClock:
    def test_process_when_idle(self):
        clock = SimulatedClock()
        finish = clock.process(arrival=10.0, compute_seconds=2.0)
        assert finish == 12.0
        assert clock.now == 12.0

    def test_process_queues_behind_busy_server(self):
        clock = SimulatedClock()
        clock.process(arrival=0.0, compute_seconds=5.0)
        finish = clock.process(arrival=1.0, compute_seconds=1.0)
        assert finish == 6.0

    def test_compute_scale(self):
        clock = SimulatedClock(compute_scale=10.0)
        assert clock.process(arrival=0.0, compute_seconds=1.0) == 10.0

    def test_reset_and_utilisation(self):
        clock = SimulatedClock()
        clock.process(0.0, 2.0)
        assert clock.utilisation(4.0) == pytest.approx(0.5)
        clock.reset(100.0)
        assert clock.now == 100.0
        assert clock.busy_time == 0.0


class TestLatencyTracker:
    def test_record_batch_and_totals(self):
        tracker = LatencyTracker()
        edges = [
            TimestampedEdge("a", "b", 0.0, fraud_label="x"),
            TimestampedEdge("b", "c", 1.0),
        ]
        tracker.record_batch(edges, queue_start=2.0, response_time=3.0)
        assert len(tracker) == 2
        assert tracker.total_latency(fraud_only=True) == pytest.approx(3.0)
        assert tracker.total_latency(fraud_only=False) == pytest.approx(5.0)
        assert tracker.mean_queueing_time(fraud_only=False) == pytest.approx(1.5)

    def test_queueing_share(self):
        tracker = LatencyTracker()
        tracker.record_batch(
            [TimestampedEdge("a", "b", 0.0, fraud_label="x")], queue_start=9.0, response_time=10.0
        )
        assert tracker.queueing_share() == pytest.approx(0.9)

    def test_percentile(self):
        tracker = LatencyTracker()
        for i in range(10):
            tracker.record_batch(
                [TimestampedEdge("a", "b", 0.0, fraud_label="x")], queue_start=i, response_time=i
            )
        assert tracker.percentile_latency(50) == pytest.approx(4.5)

    def test_empty_tracker(self):
        tracker = LatencyTracker()
        assert tracker.total_latency() == 0.0
        assert tracker.mean_latency() == 0.0
        assert tracker.queueing_share() == 0.0


class TestPreventionTracker:
    def test_prevention_ratio_per_label(self):
        tracker = PreventionTracker()
        for ts in [0.0, 1.0, 2.0, 3.0]:
            tracker.record_transaction(TimestampedEdge("a", "b", ts, fraud_label="ring"))
        tracker.record_detection("ring", 1.5)
        assert tracker.prevention_ratio("ring") == pytest.approx(0.5)
        assert tracker.overall_prevention_ratio() == pytest.approx(0.5)
        assert tracker.detection_delays()["ring"] == pytest.approx(1.5)

    def test_earliest_detection_wins(self):
        tracker = PreventionTracker()
        tracker.record_transaction(TimestampedEdge("a", "b", 0.0, fraud_label="x"))
        tracker.record_detection("x", 5.0)
        tracker.record_detection("x", 2.0)
        assert tracker.detection_time("x") == 2.0

    def test_undetected_label(self):
        tracker = PreventionTracker()
        tracker.record_transaction(TimestampedEdge("a", "b", 0.0, fraud_label="x"))
        assert tracker.prevention_ratio("x") == 0.0
        assert tracker.overall_prevention_ratio() == 0.0

    def test_unlabelled_edges_ignored(self):
        tracker = PreventionTracker()
        tracker.record_transaction(TimestampedEdge("a", "b", 0.0))
        assert tracker.labels() == []


class TestPolicies:
    def test_per_edge_policy_flushes_each_edge(self, dw, two_block_graph):
        from repro.core.spade import Spade

        spade = Spade(dw)
        spade.load_graph(two_block_graph)
        policy = PerEdgePolicy()
        edge = TimestampedEdge("l0", "l2", 0.0, 1.0)
        batch = policy.offer(spade, edge)
        assert batch == [edge]
        assert policy.drain() is None

    def test_batch_policy_buffers_until_full(self, dw, two_block_graph):
        from repro.core.spade import Spade

        spade = Spade(dw)
        spade.load_graph(two_block_graph)
        policy = BatchPolicy(3)
        edges = [TimestampedEdge("l0", "l2", float(i), 1.0) for i in range(4)]
        assert policy.offer(spade, edges[0]) is None
        assert policy.offer(spade, edges[1]) is None
        assert len(policy.offer(spade, edges[2])) == 3
        assert policy.offer(spade, edges[3]) is None
        assert len(policy.drain()) == 1

    def test_batch_policy_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BatchPolicy(0)

    def test_grouping_policy_flushes_on_urgent(self, dw, two_block_graph):
        from repro.core.spade import Spade

        spade = Spade(dw)
        spade.load_graph(two_block_graph)
        policy = EdgeGroupingPolicy()
        benign = TimestampedEdge("l2", "l0", 0.0, 0.05)
        urgent = TimestampedEdge("h0", "h2", 1.0, 9.0)
        assert policy.offer(spade, benign) is None
        batch = policy.offer(spade, urgent)
        assert len(batch) == 2
        assert policy.urgent_flushes == 1

    def test_periodic_static_policy_flushes_on_deadline(self, dw, two_block_graph):
        from repro.core.spade import Spade

        spade = Spade(dw)
        spade.load_graph(two_block_graph)
        policy = PeriodicStaticPolicy(period=10.0)
        assert policy.offer(spade, TimestampedEdge("l0", "l2", 0.0, 1.0)) is None
        assert policy.offer(spade, TimestampedEdge("l1", "l0", 5.0, 1.0)) is None
        batch = policy.offer(spade, TimestampedEdge("l2", "l1", 11.0, 1.0))
        assert len(batch) == 3

    def test_periodic_static_policy_process_repeels(self, dw, two_block_graph):
        from repro.core.spade import Spade

        spade = Spade(dw)
        spade.load_graph(two_block_graph)
        policy = PeriodicStaticPolicy(period=10.0)
        policy.process(spade, [TimestampedEdge("l0", "l1", 0.0, 30.0), TimestampedEdge("l1", "l2", 1.0, 30.0)])
        assert spade.graph.edge_weight("l0", "l1") == pytest.approx(31.0)
        # After the re-peel the light clique became the community.
        assert {"l0", "l1"} <= set(spade.detect().vertices)

    def test_periodic_policy_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicStaticPolicy(0.0)
