"""Tests for edge deletion (Appendix C.1) and time-window detection (C.3)."""

from __future__ import annotations

import random

import pytest

from repro.core.deletion import delete_edges, repeel_suffix, safe_prefix_bound
from repro.core.state import PeelingState
from repro.core.windows import TimeWindowDetector
from repro.graph.delta import EdgeUpdate
from repro.peeling.semantics import dw_semantics
from repro.peeling.static import peel

from tests.helpers import assert_matches_static, assert_valid_state, build_state, random_weighted_edges


class TestDeletion:
    def test_delete_single_edge_matches_static(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        delete_edges(state, [("h0", "h1")])
        assert not state.graph.has_edge("h0", "h1")
        assert_matches_static(state)

    def test_delete_unknown_edge_is_ignored(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        before = list(state.order)
        stats = delete_edges(state, [("nope", "nothere")])
        assert stats.repeeled_positions == 0
        assert stats.affected_area == 0
        assert list(state.order) == before

    def test_delete_reports_reorder_stats(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        stats = delete_edges(state, [("h0", "h1")])
        assert stats.repeeled_positions > 0
        assert stats.islands == 1
        assert stats.scanned_positions == stats.repeeled_positions

    def test_delete_bridge_keeps_both_blocks_valid(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        delete_edges(state, [("h0", "l0")])
        assert_matches_static(state)

    def test_delete_many_edges(self):
        rng = random.Random(13)
        edges = random_weighted_edges(25, 90, rng)
        state = build_state(edges)
        doomed = [(src, dst) for src, dst, _w in edges[::7]]
        delete_edges(state, doomed)
        for src, dst in doomed:
            assert not state.graph.has_edge(src, dst)
        assert_matches_static(state)

    def test_interleaved_insert_and_delete(self):
        from repro.core.insertion import insert_edge

        rng = random.Random(23)
        edges = random_weighted_edges(20, 70, rng)
        state = build_state(edges[:50])
        for src, dst, weight in edges[50:60]:
            insert_edge(state, src, dst, weight)
        delete_edges(state, [(e[0], e[1]) for e in edges[10:20]])
        for src, dst, weight in edges[60:]:
            insert_edge(state, src, dst, weight)
        assert_matches_static(state)

    def test_safe_prefix_bound_never_exceeds_lightened_positions(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        position = state.position("h0")
        bound = safe_prefix_bound(state, [("h0", 3.0)])
        assert bound <= position

    def test_safe_prefix_bound_empty(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        assert safe_prefix_bound(state, []) == len(state.order)

    def test_repeel_suffix_full_range(self, random_graph, dw):
        state = PeelingState(random_graph, dw)
        count = repeel_suffix(state, 0)
        assert count == len(state.order)
        assert_valid_state(state)

    def test_repeel_suffix_empty_range(self, random_graph, dw):
        state = PeelingState(random_graph, dw)
        assert repeel_suffix(state, len(state.order)) == 0

    def test_total_updated_after_deletion(self, two_block_graph, dw):
        state = PeelingState(two_block_graph, dw)
        before = state.total
        delete_edges(state, [("h0", "h1")])
        assert state.total == pytest.approx(before - 3.0)
        state.check_consistency()


def _history(edges):
    return [(ts, EdgeUpdate(src, dst, weight)) for src, dst, weight, ts in edges]


class TestTimeWindow:
    @pytest.fixture
    def history(self):
        rng = random.Random(31)
        raw = random_weighted_edges(20, 80, rng)
        # Unique (src, dst) pairs with increasing timestamps.
        return _history([(src, dst, w, float(i)) for i, (src, dst, w) in enumerate(raw)])

    def test_rejects_unsorted_history(self):
        history = [(1.0, EdgeUpdate("a", "b")), (0.5, EdgeUpdate("b", "c"))]
        with pytest.raises(ValueError):
            TimeWindowDetector(history, dw_semantics())

    def test_first_window_is_built_from_scratch(self, history, dw):
        detector = TimeWindowDetector(history, dw)
        shift = detector.set_window(0.0, 40.0)
        assert shift.rebuilt and shift.case == 1
        assert detector.window == (0.0, 40.0)
        assert detector.detect().density > 0

    def test_detect_before_window_raises(self, history, dw):
        detector = TimeWindowDetector(history, dw)
        with pytest.raises(RuntimeError):
            detector.detect()

    def test_empty_window_rejected(self, history, dw):
        detector = TimeWindowDetector(history, dw)
        with pytest.raises(ValueError):
            detector.set_window(5.0, 5.0)

    def test_disjoint_window_rebuilds(self, history, dw):
        detector = TimeWindowDetector(history, dw)
        detector.set_window(0.0, 20.0)
        shift = detector.set_window(50.0, 70.0)
        assert shift.rebuilt

    @pytest.mark.parametrize(
        "first,second,case",
        [
            ((10.0, 40.0), (0.0, 60.0), 2),   # new window contains the old
            ((0.0, 60.0), (10.0, 40.0), 3),   # old window contains the new
            ((20.0, 60.0), (10.0, 50.0), 4),  # slide left
            ((10.0, 50.0), (20.0, 70.0), 5),  # slide right
        ],
    )
    def test_overlapping_windows_use_incremental_maintenance(self, history, dw, first, second, case):
        detector = TimeWindowDetector(history, dw)
        detector.set_window(*first)
        shift = detector.set_window(*second)
        assert not shift.rebuilt
        assert shift.case == case

        # The community must match peeling the window's edges from scratch
        # (ignoring isolated leftover vertices, which cannot join a community).
        window_updates = [u for t, u in history if second[0] <= t < second[1]]
        reference_graph = dw.materialize([(u.src, u.dst, u.weight) for u in window_updates])
        reference = peel(reference_graph, "DW")
        assert detector.detect().vertices == reference.community

    def test_repeated_sliding_stays_consistent(self, history, dw):
        detector = TimeWindowDetector(history, dw)
        detector.set_window(0.0, 30.0)
        for start in range(0, 50, 10):
            detector.set_window(float(start), float(start + 30))
            state = detector.state
            state.check_consistency()
