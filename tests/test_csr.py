"""Tests for the CSR snapshot engine and the ``peel_csr`` fast path.

Three pillars:

* **Differential** — property-based (hypothesis) proof that the CSR peel
  reproduces the heap peel *bit for bit* (sequences, weights, densities)
  on random DG/DW/FD graphs, full and subset runs, dyadic and arbitrary
  float weights.
* **Snapshot semantics** — freeze → mutate → freeze staleness guard,
  immutability of the frozen arrays, structure fidelity against the
  mutable pools.
* **Persistence** — `.npz` save/load round-trips bit-identically, the
  ``mmap_mode="r"`` load memory-maps every numeric member, and a forked
  worker peels from the mapped snapshot without copying the arrays.
"""

from __future__ import annotations

import multiprocessing
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.deletion import delete_edges, repeel_suffix, safe_prefix_bound
from repro.core.enumeration import enumerate_communities
from repro.core.state import PeelingState
from repro.graph.array_graph import ArrayGraph
from repro.graph.csr import CsrSnapshot, freeze_graph
from repro.graph.graph import DynamicGraph
from repro.graph.stats import compute_stats, degree_distribution
from repro.peeling.semantics import (
    dg_semantics,
    dw_semantics,
    fraudar_semantics,
    subset_density,
)
from repro.peeling.static import (
    peel,
    peel_csr,
    peel_csr_ids,
    peel_subset,
    peel_subset_csr,
    peel_subset_ids,
    peeling_weights,
)

from tests.helpers import random_weighted_edges

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

ALL_SEMANTICS = [dg_semantics, dw_semantics, fraudar_semantics]


@st.composite
def csr_edge_lists(draw):
    """Random simple directed edge lists, dyadic or arbitrary-float weighted."""
    n = draw(st.integers(3, 18))
    possible = [(i, j) for i in range(n) for j in range(n) if i != j]
    count = draw(st.integers(1, min(60, len(possible))))
    pairs = draw(st.permutations(possible))[:count]
    dyadic = draw(st.booleans())
    if dyadic:
        weights = draw(
            st.lists(
                st.integers(1, 256).map(lambda u: u / 64.0),
                min_size=count,
                max_size=count,
            )
        )
    else:
        weights = draw(
            st.lists(
                st.floats(0.05, 8.0, allow_nan=False, allow_infinity=False),
                min_size=count,
                max_size=count,
            )
        )
    return [(src, dst, w) for (src, dst), w in zip(pairs, weights)]


def assert_results_identical(a, b):
    """Bit-level equality of two peeling results."""
    assert list(a.order) == list(b.order)
    assert list(a.weights) == list(b.weights)
    assert a.total_suspiciousness == b.total_suspiciousness
    assert a.best_density == b.best_density
    assert a.community == b.community


class TestDifferential:
    """peel_csr must be indistinguishable from the heap peel."""

    @SETTINGS
    @given(edges=csr_edge_lists(), semantics_index=st.integers(0, 2))
    def test_full_peel_matches_heap_bit_for_bit(self, edges, semantics_index):
        semantics = ALL_SEMANTICS[semantics_index]()
        graph = semantics.materialize(edges, backend="array")
        assert_results_identical(peel(graph, semantics.name), peel_csr(graph, semantics.name))

    @SETTINGS
    @given(
        edges=csr_edge_lists(),
        semantics_index=st.integers(0, 2),
        keep=st.floats(0.2, 1.0),
    )
    def test_subset_peel_matches_heap_bit_for_bit(self, edges, semantics_index, keep):
        semantics = ALL_SEMANTICS[semantics_index]()
        graph = semantics.materialize(edges, backend="array")
        vertices = list(graph.vertices())
        subset = set(vertices[: max(1, int(len(vertices) * keep))])
        assert_results_identical(
            peel_subset(graph, subset, semantics.name),
            peel_subset_csr(graph, subset, semantics.name),
        )

    def test_id_based_subset_peel_matches(self):
        rng = random.Random(5)
        edges = random_weighted_edges(25, 120, rng, dyadic=False)
        graph = dw_semantics().materialize(edges, backend="array")
        member_ids = graph.vertex_ids()[::2]
        heap_order, heap_weights, heap_total = peel_subset_ids(graph, member_ids)
        csr_order, csr_weights, csr_total = peel_csr_ids(graph.freeze(), member_ids)
        assert heap_order.tolist() == csr_order.tolist()
        assert heap_weights == csr_weights
        assert heap_total == csr_total

    def test_heavy_degree_vertices_match(self):
        # A star larger than SMALL_DEGREE forces the pairwise-sum branch.
        edges = [("hub", f"leaf{i}", 1.0 + i / 7.0) for i in range(64)]
        edges += [(f"leaf{i}", f"leaf{i+1}", 0.3) for i in range(0, 60, 2)]
        graph = dw_semantics().materialize(edges, backend="array")
        assert_results_identical(peel(graph, "DW"), peel_csr(graph, "DW"))

    def test_dict_graph_freezes_via_conversion(self):
        rng = random.Random(11)
        edges = random_weighted_edges(15, 50, rng)  # dyadic => exact across layouts
        graph = dw_semantics().materialize(edges, backend="dict")
        assert isinstance(graph, DynamicGraph)
        assert_results_identical(peel(graph, "DW"), peel_csr(graph, "DW"))


class TestSnapshotSemantics:
    def test_structure_matches_pools(self):
        rng = random.Random(3)
        edges = random_weighted_edges(20, 80, rng)
        graph = dw_semantics().materialize(edges, backend="array")
        snapshot = graph.freeze()
        assert snapshot.num_vertices == graph.num_vertices()
        assert snapshot.num_edges == graph.num_edges()
        assert snapshot.total_edge_weight == graph.total_edge_weight()
        inc_off, inc_mid, inc_nbr, inc_w = snapshot.incidence()
        for vid in graph.vertex_ids().tolist():
            ids, weights = graph.incident_arrays_id(vid)
            s, e = int(inc_off[vid]), int(inc_off[vid + 1])
            assert inc_nbr[s:e].tolist() == ids.tolist()
            assert inc_w[s:e].tolist() == weights.tolist()
            assert snapshot.degrees(np.array([vid]))[0] == graph.degree_id(vid)

    def test_freeze_mutate_freeze_staleness_guard(self):
        graph = ArrayGraph(edges=[("a", "b", 1.0), ("b", "c", 2.0)])
        first = graph.freeze()
        assert not first.is_stale(graph)
        assert graph.freeze() is first  # cached while unmutated
        graph.add_edge("c", "a", 4.0)
        assert first.is_stale(graph)
        second = graph.freeze()
        assert second is not first
        assert not second.is_stale(graph)
        # The old snapshot still describes the pre-mutation graph.
        assert first.num_edges == 2
        assert second.num_edges == 3
        # Deletions and weight changes also invalidate.
        graph.remove_edge("a", "b")
        assert second.is_stale(graph)

    def test_snapshot_arrays_are_immutable(self):
        graph = ArrayGraph(edges=[("a", "b", 1.0)])
        snapshot = graph.freeze()
        with pytest.raises(ValueError):
            snapshot.out_weights[0] = 99.0
        with pytest.raises(ValueError):
            snapshot.member[0] = False

    def test_freeze_graph_helper_covers_both_backends(self):
        edges = [("a", "b", 1.0), ("b", "c", 2.0)]
        for backend_cls in (ArrayGraph, DynamicGraph):
            graph = backend_cls(edges=edges)
            snapshot = freeze_graph(graph)
            assert snapshot.num_edges == 2
            assert sorted(snapshot.labels_for(snapshot.order)) == ["a", "b", "c"]

    def test_subset_density_matches_reference(self):
        rng = random.Random(9)
        edges = random_weighted_edges(18, 70, rng)
        graph = dw_semantics().materialize(edges, backend="array")
        snapshot = graph.freeze()
        vertices = list(graph.vertices())
        subset = set(vertices[::3])
        expected = subset_density(graph, subset)
        got = snapshot.subset_density(snapshot.ids_for(subset))
        assert got == pytest.approx(expected, rel=1e-12)

    def test_from_edges_bincount_construction(self):
        src = np.array([0, 0, 1, 2], dtype=np.int32)
        dst = np.array([1, 2, 2, 0], dtype=np.int32)
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        snapshot = CsrSnapshot.from_edges(src, dst, weights, labels=["x", "y", "z"])
        assert snapshot.out_offsets.tolist() == [0, 2, 3, 4]
        assert snapshot.out_neighbors.tolist() == [1, 2, 2, 0]
        assert snapshot.in_offsets.tolist() == [0, 1, 2, 4]
        assert snapshot.in_neighbors.tolist() == [2, 0, 0, 1]
        assert snapshot.total_edge_weight == 10.0


class TestReadPathRouting:
    """The analytics consumers produce identical answers through the snapshot."""

    def test_enumeration_matches_dict_reference(self):
        rng = random.Random(21)
        edges = random_weighted_edges(24, 90, rng)  # dyadic weights
        array_graph = dw_semantics().materialize(edges, backend="array")
        dict_graph = dw_semantics().materialize(edges, backend="dict")
        via_csr = enumerate_communities(array_graph, max_instances=6, min_density=0.0)
        reference = enumerate_communities(dict_graph, max_instances=6, min_density=0.0)
        assert [set(i.vertices) for i in via_csr] == [set(i.vertices) for i in reference]
        # Densities go through the label path on both backends, so they
        # are bit-identical, not merely close.
        assert [i.density for i in via_csr] == [i.density for i in reference]

    def test_exact_pair_weights_identical_across_backends(self):
        rng = random.Random(26)
        edges = random_weighted_edges(12, 40, rng, dyadic=False)
        edges += [(dst, src, w / 2) for src, dst, w in edges[:8]]  # reciprocal pairs
        from repro.peeling.exact import _undirected_weights

        array_pairs = _undirected_weights(dw_semantics().materialize(edges, backend="array"))
        dict_pairs = _undirected_weights(dw_semantics().materialize(edges, backend="dict"))
        assert list(array_pairs.items()) == list(dict_pairs.items())  # order included

    def test_stats_match_dict_reference(self):
        rng = random.Random(22)
        edges = random_weighted_edges(30, 100, rng)
        array_graph = dw_semantics().materialize(edges, backend="array")
        dict_graph = dw_semantics().materialize(edges, backend="dict")
        assert compute_stats(array_graph) == compute_stats(dict_graph)
        assert degree_distribution(array_graph) == degree_distribution(dict_graph)

    def test_deletion_suffix_repeel_csr_matches_heap(self):
        rng = random.Random(23)
        edges = random_weighted_edges(20, 80, rng)
        semantics = dw_semantics()

        def build():
            graph = semantics.materialize(edges, backend="array")
            return PeelingState(graph, semantics)

        doomed = edges[::7]
        state_heap, state_csr = build(), build()
        for state, force in ((state_heap, False), (state_csr, True)):
            graph = state.graph
            lightened = []
            for src, dst, _w in doomed:
                weight = graph.remove_edge(src, dst)
                lightened.append((src, weight))
                lightened.append((dst, weight))
                state.add_total(-weight)
            bound = safe_prefix_bound(state, lightened)
            repeel_suffix(state, bound, use_csr=force)
        assert state_heap.order_ids.tolist() == state_csr.order_ids.tolist()
        assert state_heap.weights.tolist() == state_csr.weights.tolist()
        state_csr.check_consistency()

    def test_delete_edges_still_matches_static(self):
        rng = random.Random(24)
        edges = random_weighted_edges(18, 60, rng)
        semantics = dw_semantics()
        graph = semantics.materialize(edges, backend="array")
        state = PeelingState(graph, semantics)
        delete_edges(state, [(e[0], e[1]) for e in edges[::5]])
        static = peel(state.graph, semantics.name)
        assert list(static.order) == state.order
        assert list(static.weights) == state.weights.tolist()

    def test_peeling_weights_vectorized_matches_scalar(self):
        rng = random.Random(25)
        edges = random_weighted_edges(22, 70, rng, dyadic=False)
        array_graph = dw_semantics().materialize(edges, backend="array")
        ids = array_graph.vertex_ids()
        expected = {
            v: array_graph.vertex_weight(v) + array_graph.incident_weight(v)
            for v in array_graph.vertices()
        }
        assert peeling_weights(array_graph) == expected
        # the vectorized gather really is used: values come back bit-equal
        gathered = array_graph.vertex_weight_ids(ids) + array_graph.incident_weight_ids(ids)
        assert gathered.tolist() == [expected[v] for v in array_graph.vertices()]


def _fork_worker(path, queue):
    loaded = CsrSnapshot.load(path, mmap_mode="r")
    # Zero-copy: the numeric members must be memory-mapped, not heap copies.
    assert isinstance(loaded.out_weights, np.memmap)
    assert isinstance(loaded.in_neighbors, np.memmap)
    result = peel_csr(loaded, "DW")
    queue.put((list(result.order), list(result.weights), result.best_density))


class TestPersistence:
    def _snapshot(self):
        rng = random.Random(31)
        edges = random_weighted_edges(25, 100, rng, dyadic=False)
        graph = dw_semantics().materialize(edges, backend="array")
        return graph, graph.freeze()

    def test_save_load_roundtrip_bit_identical(self, tmp_path):
        _graph, snapshot = self._snapshot()
        path = tmp_path / "snapshot.npz"
        snapshot.save(path)
        for mmap_mode in (None, "r"):
            loaded = CsrSnapshot.load(path, mmap_mode=mmap_mode)
            for name in (
                "order",
                "member",
                "vertex_weights",
                "out_offsets",
                "out_neighbors",
                "out_weights",
                "in_offsets",
                "in_neighbors",
                "in_weights",
            ):
                original = getattr(snapshot, name)
                restored = getattr(loaded, name)
                assert original.dtype == restored.dtype
                assert np.array_equal(original, restored), name
                if mmap_mode == "r":
                    assert isinstance(restored, np.memmap), name
            assert loaded.labels == snapshot.labels
            assert loaded.total_edge_weight == snapshot.total_edge_weight
            assert loaded.source_version == snapshot.source_version

    def test_save_appends_npz_suffix_and_load_mirrors_it(self, tmp_path):
        _graph, snapshot = self._snapshot()
        bare = tmp_path / "snap"  # np.savez will write snap.npz
        snapshot.save(bare)
        assert (tmp_path / "snap.npz").exists()
        for source in (bare, tmp_path / "snap.npz"):
            loaded = CsrSnapshot.load(source, mmap_mode="r")
            assert np.array_equal(loaded.out_weights, snapshot.out_weights)

    def test_save_without_labels(self, tmp_path):
        _graph, snapshot = self._snapshot()
        path = tmp_path / "nolabels.npz"
        snapshot.save(path, include_labels=False)
        loaded = CsrSnapshot.load(path, mmap_mode="r")
        assert loaded.labels is None
        assert np.array_equal(loaded.out_weights, snapshot.out_weights)

    def test_mmap_load_peels_identically(self, tmp_path):
        graph, snapshot = self._snapshot()
        path = tmp_path / "snapshot.npz"
        snapshot.save(path)
        loaded = CsrSnapshot.load(path, mmap_mode="r")
        assert_results_identical(peel(graph, "DW"), peel_csr(loaded, "DW"))

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_forked_worker_peels_from_mmap(self, tmp_path):
        graph, snapshot = self._snapshot()
        path = tmp_path / "snapshot.npz"
        snapshot.save(path)
        reference = peel(graph, "DW")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        worker = ctx.Process(target=_fork_worker, args=(str(path), queue))
        worker.start()
        order, weights, density = queue.get(timeout=60)
        worker.join(timeout=60)
        assert worker.exitcode == 0
        assert order == list(reference.order)
        assert weights == list(reference.weights)
        assert density == reference.best_density
