"""Differential tests: dict vs array backend must be *bit-identical*.

Both backends enumerate neighbourhoods in the same order and the engine
sums weights the same way on top of them, so for exact (dyadic) weights
the two backends must produce byte-identical peeling sequences, weights,
totals, densities and communities at every step of an arbitrary update
stream — not merely equivalent ones.  These property-based tests drive
random streams of single inserts, batches and deletions through a state
per backend and compare after every step, with ``check_consistency``
asserted throughout.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.batch import insert_batch
from repro.core.deletion import delete_edges
from repro.core.insertion import insert_edge
from repro.core.state import PeelingState
from repro.errors import UnknownEdgeError
from repro.graph.array_graph import ArrayGraph
from repro.graph.backend import backend_of, convert_graph, create_graph
from repro.graph.graph import DynamicGraph
from repro.peeling.semantics import dw_semantics
from repro.peeling.static import peel

from tests.helpers import dyadic_weight, random_weighted_edges


def _paired_states(initial_edges):
    """Build one peeling state per backend from the same edge stream."""
    semantics = dw_semantics()
    states = []
    for backend in ("dict", "array"):
        graph = semantics.materialize(initial_edges, backend=backend)
        states.append(PeelingState(graph, semantics))
    return states


def _assert_identical(dict_state: PeelingState, array_state: PeelingState) -> None:
    """Assert the two maintained states are byte-identical, and consistent."""
    dict_state.check_consistency()
    array_state.check_consistency()
    assert list(dict_state.order) == list(array_state.order)
    assert np.array_equal(dict_state.weights, array_state.weights)
    assert dict_state.total == array_state.total
    left, right = dict_state.community(), array_state.community()
    assert left.vertices == right.vertices
    assert left.density == right.density
    assert left.peel_index == right.peel_index
    assert np.array_equal(dict_state.density_profile(), array_state.density_profile())


class TestDifferentialStreams:
    @pytest.mark.parametrize("seed", [7, 101, 2024])
    def test_single_insert_stream(self, seed):
        rng = random.Random(seed)
        edges = random_weighted_edges(24, 110, rng)
        dict_state, array_state = _paired_states(edges[:60])
        _assert_identical(dict_state, array_state)
        for src, dst, weight in edges[60:]:
            insert_edge(dict_state, src, dst, weight)
            insert_edge(array_state, src, dst, weight)
            _assert_identical(dict_state, array_state)

    @pytest.mark.parametrize("seed", [13, 77])
    def test_mixed_insert_batch_delete_stream(self, seed):
        rng = random.Random(seed)
        edges = random_weighted_edges(30, 160, rng)
        dict_state, array_state = _paired_states(edges[:80])
        live = list(edges[:80])
        cursor = 80
        for _round in range(12):
            action = rng.choice(["insert", "batch", "delete"])
            if action == "insert" and cursor < len(edges):
                src, dst, weight = edges[cursor]
                cursor += 1
                live.append((src, dst, weight))
                insert_edge(dict_state, src, dst, weight)
                insert_edge(array_state, src, dst, weight)
            elif action == "batch":
                size = rng.randint(1, 5)
                batch = [
                    (rng.randrange(30, 40), rng.randrange(30), dyadic_weight(rng))
                    for _ in range(size)
                ]
                live.extend(batch)
                insert_batch(dict_state, list(batch))
                insert_batch(array_state, list(batch))
            else:
                if not live:
                    continue
                doomed = [live.pop(rng.randrange(len(live)))]
                pairs = [(src, dst) for src, dst, _w in doomed]
                live = [e for e in live if (e[0], e[1]) not in set(pairs)]
                delete_edges(dict_state, pairs)
                delete_edges(array_state, pairs)
            _assert_identical(dict_state, array_state)

    def test_streams_match_static_repeel(self):
        rng = random.Random(5)
        edges = random_weighted_edges(20, 80, rng)
        dict_state, array_state = _paired_states(edges[:50])
        for src, dst, weight in edges[50:]:
            insert_edge(dict_state, src, dst, weight)
            insert_edge(array_state, src, dst, weight)
        _assert_identical(dict_state, array_state)
        static = peel(array_state.graph, "DW")
        assert list(static.order) == list(array_state.order)
        assert static.community == array_state.community().vertices


class TestArrayGraphUnit:
    def test_matches_dict_backend_content(self):
        rng = random.Random(3)
        edges = random_weighted_edges(15, 60, rng)
        dict_graph = DynamicGraph(edges=edges)
        array_graph = ArrayGraph(edges=edges)
        assert array_graph == dict_graph
        assert list(dict_graph.vertices()) == list(array_graph.vertices())
        assert sorted(dict_graph.edges()) == sorted(array_graph.edges())
        for vertex in dict_graph.vertices():
            assert dict_graph.degree(vertex) == array_graph.degree(vertex)
            assert dict_graph.incident_weight(vertex) == pytest.approx(
                array_graph.incident_weight(vertex)
            )
            assert list(dict_graph.incident_items(vertex)) == list(
                array_graph.incident_items(vertex)
            )
            assert list(dict_graph.neighbors(vertex)) == list(array_graph.neighbors(vertex))

    def test_duplicate_edge_accumulates(self):
        graph = ArrayGraph()
        assert graph.add_edge("a", "b", 1.5) == 1.5
        assert graph.add_edge("a", "b", 0.5) == 2.0
        assert graph.num_edges() == 1
        assert graph.edge_weight("a", "b") == 2.0
        assert graph.incident_weight("a") == 2.0

    def test_pool_growth_beyond_initial_capacity(self):
        graph = ArrayGraph()
        for i in range(50):
            graph.add_edge("hub", f"v{i}", 1.0 + i / 64.0)
        assert graph.out_degree("hub") == 50
        assert graph.degree("hub") == 50
        assert graph.incident_weight("hub") == pytest.approx(sum(1.0 + i / 64.0 for i in range(50)))
        ids, weights = graph.incident_arrays_id(graph.interner.id_of("hub"))
        assert len(ids) == 50
        assert weights[0] == 1.0

    def test_remove_edge_keeps_slots_consistent(self):
        graph = ArrayGraph()
        labels = [f"v{i}" for i in range(6)]
        for i, dst in enumerate(labels):
            graph.add_edge("hub", dst, (i + 1) / 4.0)
        assert graph.remove_edge("hub", "v2") == pytest.approx(3 / 4.0)
        # Remaining edges keep their weights and enumeration order.
        assert [dst for dst, _w in graph.out_neighbors("hub").items()] == [
            "v0", "v1", "v3", "v4", "v5",
        ]
        for i, dst in enumerate(labels):
            if dst == "v2":
                with pytest.raises(UnknownEdgeError):
                    graph.edge_weight("hub", dst)
            else:
                assert graph.edge_weight("hub", dst) == pytest.approx((i + 1) / 4.0)
        # Removing and re-adding still round-trips.
        graph.add_edge("hub", "v2", 9.0)
        assert graph.edge_weight("hub", "v2") == 9.0
        assert graph.out_degree("hub") == 6

    def test_absent_vertex_queries_match_dict_backend(self):
        dict_graph = DynamicGraph(edges=[("a", "b", 1.0)])
        array_graph = ArrayGraph(edges=[("a", "b", 1.0)])
        for graph in (dict_graph, array_graph):
            assert list(graph.neighbors("ghost")) == []
            assert graph.incident_weight("ghost") == 0.0
            assert list(graph.incident_items("ghost")) == []
            assert not graph.has_vertex("ghost")

    def test_unknown_edge_error_fields(self):
        graph = ArrayGraph()
        graph.add_edge("a", "b", 1.0)
        with pytest.raises(UnknownEdgeError) as excinfo:
            graph.remove_edge("b", "a")
        assert excinfo.value.src == "b"
        assert excinfo.value.dst == "a"

    def test_copy_is_independent(self):
        graph = ArrayGraph(edges=[("a", "b", 2.0), ("b", "c", 1.0)])
        clone = graph.copy()
        clone.add_edge("c", "a", 4.0)
        assert not graph.has_edge("c", "a")
        assert clone.has_edge("c", "a")
        assert graph.interner is not clone.interner

    def test_convert_graph_round_trip(self):
        rng = random.Random(11)
        edges = random_weighted_edges(12, 40, rng)
        dict_graph = DynamicGraph(edges=edges)
        array_graph = convert_graph(dict_graph, "array")
        assert backend_of(array_graph) == "array"
        assert array_graph == dict_graph
        back = convert_graph(array_graph, "dict")
        assert backend_of(back) == "dict"
        assert array_graph == back
        # Same-backend conversion is the identity.
        assert convert_graph(dict_graph, "dict") is dict_graph

    def test_interner_ids_are_stable_insertion_order(self):
        graph = create_graph("array")
        graph.add_edge("x", "y")
        graph.add_edge("z", "x")
        assert [graph.interner.id_of(v) for v in ("x", "y", "z")] == [0, 1, 2]
        graph.remove_edge("x", "y")
        graph.add_edge("x", "y")
        assert [graph.interner.id_of(v) for v in ("x", "y", "z")] == [0, 1, 2]
