"""Public-API contract tests: surface snapshots, deprecations, config.

The v1 façade (`repro.api`) is a compatibility contract: this module
snapshots the exported surfaces (so accidental additions/removals fail
loudly in review), pins the deprecation shims to exactly the renamed
methods, and exercises the ``EngineConfig`` round-trip + central
validation guarantees the rest of the repo relies on.
"""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.api
from repro.api import (
    Delete,
    EngineConfig,
    Flush,
    Insert,
    InsertBatch,
    SpadeClient,
    as_events,
    validate_config,
)
from repro.errors import ConfigError
from repro.graph.delta import EdgeUpdate, GraphDelta


#: The frozen v1 surface of the package root.  Additions are deliberate
#: API decisions — update the snapshot in the same PR that makes them.
REPRO_ALL = {
    "__version__",
    "Spade",
    "DetectionEngine",
    "ShardedSpade",
    "create_engine",
    "EngineConfig",
    "SpadeClient",
    "DetectionReport",
    "Insert",
    "InsertBatch",
    "Delete",
    "Flush",
    "ConfigError",
    "validate_config",
    "ArrayGraph",
    "DynamicGraph",
    "VertexInterner",
    "create_graph",
    "get_default_backend",
    "set_default_backend",
    "EdgeUpdate",
    "GraphDelta",
    "PeelingResult",
    "PeelingSemantics",
    "dg_semantics",
    "dw_semantics",
    "fraudar_semantics",
    "peel",
}

#: The frozen v1 surface of ``repro.api``.
REPRO_API_ALL = {
    "EngineConfig",
    "SpadeClient",
    "Insert",
    "InsertBatch",
    "Delete",
    "Flush",
    "Event",
    "as_events",
    "DetectionReport",
    "EventOutcome",
    "ConfigError",
    "validate_config",
    "semantics_instance",
    "SEMANTICS_FACTORIES",
    "VALID_BACKENDS",
    "VALID_EXECUTORS",
    "VALID_SEMANTICS",
    "VALID_STATIC",
}

EDGES = [("a", "b", 2.0), ("b", "c", 1.0), ("a", "c", 4.0), ("c", "d", 2.0)]


class TestSurfaceSnapshots:
    def test_repro_all_snapshot(self):
        assert set(repro.__all__) == REPRO_ALL

    def test_repro_api_all_snapshot(self):
        assert set(repro.api.__all__) == REPRO_API_ALL

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None


#: SpadeClient methods that must emit DeprecationWarning (renamed away).
DEPRECATED_CLIENT_CALLS = [
    ("insert_edge", lambda c: c.insert_edge("x", "y", 1.0)),
    ("insert_batch_edges", lambda c: c.insert_batch_edges([("x", "y", 1.0)])),
    ("delete_edges", lambda c: c.delete_edges([("a", "b")])),
    ("flush_pending", lambda c: c.flush_pending()),
    ("enumerate_frauds", lambda c: c.enumerate_frauds(max_instances=1)),
]

#: The replacement surface must stay warning-free.
CLEAN_CLIENT_CALLS = [
    ("apply", lambda c: c.apply([Insert("x", "y", 1.0)])),
    ("apply-delete", lambda c: c.apply([Delete.of([("a", "b")])])),
    ("flush", lambda c: c.flush()),
    ("detect", lambda c: c.detect()),
    ("communities", lambda c: c.communities(max_instances=1)),
    ("snapshot", lambda c: c.snapshot()),
]


def _loaded_client() -> SpadeClient:
    client = SpadeClient(EngineConfig(semantics="DW"))
    client.load(EDGES)
    return client


class TestDeprecationShims:
    @pytest.mark.parametrize("name,call", DEPRECATED_CLIENT_CALLS, ids=[n for n, _ in DEPRECATED_CLIENT_CALLS])
    def test_legacy_client_methods_warn(self, name, call):
        client = _loaded_client()
        with pytest.warns(DeprecationWarning, match=name):
            call(client)

    @pytest.mark.parametrize("name,call", CLEAN_CLIENT_CALLS, ids=[n for n, _ in CLEAN_CLIENT_CALLS])
    def test_v1_surface_does_not_warn(self, name, call):
        client = _loaded_client()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            call(client)

    def test_legacy_spade_class_does_not_warn(self):
        """The Spade class itself is not deprecated — only the client shims."""
        spade = repro.Spade(repro.dw_semantics())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            spade.load_edges(EDGES)
            spade.insert_edge("x", "y", 1.0)
            spade.insert_batch_edges([("y", "z", 1.0)])
            spade.delete_edge("x", "y")
            spade.flush_pending()

    def test_shim_results_match_engine(self):
        """The shims delegate — same result objects as the raw engine path."""
        shimmed = _loaded_client()
        legacy = EngineConfig(semantics="DW").build()
        legacy.load_edges(EDGES)
        with pytest.warns(DeprecationWarning):
            via_shim = shimmed.insert_edge("x", "y", 3.0)
        direct = legacy.insert_edge("x", "y", 3.0)
        assert via_shim == direct


class TestEngineConfig:
    def test_round_trip(self):
        cfg = EngineConfig(
            semantics="FD",
            backend="array",
            static="csr",
            shards=4,
            edge_grouping=True,
            coordinator_interval=64,
            executor="process",
        )
        assert EngineConfig.from_dict(cfg.to_dict()) == cfg

    def test_default_round_trip(self):
        cfg = EngineConfig()
        assert EngineConfig.from_dict(cfg.to_dict()) == cfg

    def test_partial_dict_uses_defaults(self):
        cfg = EngineConfig.from_dict({"semantics": "DW", "shards": 2})
        assert cfg == EngineConfig(semantics="DW", shards=2)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="shardz"):
            EngineConfig.from_dict({"shardz": 4})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"semantics": "XX"},
            {"backend": "sqlite"},
            {"static": "gpu"},
            {"shards": 0},
            {"executor": "thread"},
            {"coordinator_interval": 0},
        ],
    )
    def test_invalid_knobs_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            EngineConfig(**kwargs)

    def test_config_error_message_lists_choices(self):
        with pytest.raises(ConfigError, match="dict"):
            EngineConfig(backend="postgres")

    def test_config_error_is_value_error(self):
        """Callers that historically caught ValueError keep working."""
        with pytest.raises(ValueError):
            validate_config(backend="postgres")

    def test_replace_revalidates(self):
        cfg = EngineConfig()
        with pytest.raises(ConfigError):
            cfg.replace(shards=-1)

    def test_build_dispatches_on_shards(self):
        assert isinstance(EngineConfig().build(), repro.Spade)
        sharded = EngineConfig(shards=3, coordinator_interval=8).build()
        assert isinstance(sharded, repro.ShardedSpade)
        assert sharded.num_shards == 3


class TestCentralValidation:
    """The one validate_config choke point is used by every constructor."""

    def test_spade_rejects_bad_backend_eagerly(self):
        with pytest.raises(ConfigError):
            repro.Spade(backend="sqlite")

    def test_sharded_rejects_bad_executor(self):
        with pytest.raises(ConfigError):
            repro.ShardedSpade(num_shards=2, executor="thread")

    def test_sharded_rejects_bad_shards(self):
        with pytest.raises(ConfigError):
            repro.ShardedSpade(num_shards=0)

    def test_create_engine_rejects_bad_backend(self):
        with pytest.raises(ConfigError):
            repro.create_engine(backend="sqlite")


class TestEventInterop:
    def test_edge_update_insert_coerces(self):
        (event,) = list(as_events([EdgeUpdate("a", "b", 2.0)]))
        assert event == Insert("a", "b", 2.0)

    def test_edge_update_delete_coerces(self):
        (event,) = list(as_events([EdgeUpdate("a", "b", delete=True)]))
        assert event == Delete((("a", "b"),))

    def test_tuples_coerce(self):
        events = list(as_events([("a", "b"), ("b", "c", 3.0)]))
        assert events == [Insert("a", "b"), Insert("b", "c", 3.0)]

    def test_graph_delta_coerces(self):
        delta = GraphDelta.from_edges([("a", "b", 1.0), ("b", "c", 2.0)])
        events = list(as_events(delta))
        assert [e.src for e in events] == ["a", "b"]

    def test_single_event_accepted(self):
        assert list(as_events(Flush())) == [Flush()]

    def test_insert_batch_of_normalizes(self):
        batch = InsertBatch.of([("a", "b"), EdgeUpdate("b", "c", 2.0)])
        assert len(batch) == 2
        assert all(isinstance(u, EdgeUpdate) for u in batch.updates)

    def test_strings_rejected(self):
        with pytest.raises(TypeError):
            list(as_events(["ab"]))
