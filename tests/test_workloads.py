"""Tests for the workload generators (Grab, public, fraud injection, registry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graph.stats import compute_stats, degree_distribution
from repro.peeling.semantics import dw_semantics, subset_density
from repro.workloads.datasets import DATASET_REGISTRY, dataset_names, generate_dataset, table3_rows
from repro.workloads.fraud import (
    FraudScenario,
    inject_click_farming,
    inject_collusion,
    inject_deal_hunter,
    inject_standard_patterns,
)
from repro.workloads.grab import GrabConfig, generate_grab_dataset
from repro.workloads.public import PublicConfig, generate_public_dataset


class TestGrabGenerator:
    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            GrabConfig("bad", num_customers=0, num_merchants=10, num_edges=100)
        with pytest.raises(WorkloadError):
            GrabConfig("bad", num_customers=10, num_merchants=10, num_edges=100, increment_fraction=1.5)

    def test_split_matches_increment_fraction(self, tiny_grab_dataset):
        config = tiny_grab_dataset.config
        expected_increments = int(round(config.num_edges * config.increment_fraction))
        background_increments = sum(1 for e in tiny_grab_dataset.increments if not e.is_fraud)
        assert background_increments == expected_increments
        assert len(tiny_grab_dataset.initial_edges) == config.num_edges - expected_increments

    def test_all_vertices_present_upfront(self, tiny_grab_dataset, dw):
        graph = tiny_grab_dataset.initial_graph(dw)
        assert graph.num_vertices() == len(tiny_grab_dataset.vertices)
        for edge in tiny_grab_dataset.increments:
            if edge.fraud_label is None:
                assert graph.has_vertex(edge.src) and graph.has_vertex(edge.dst)

    def test_increments_sorted_by_timestamp(self, tiny_grab_dataset):
        timestamps = [e.timestamp for e in tiny_grab_dataset.increments]
        assert timestamps == sorted(timestamps)

    def test_generation_is_deterministic(self):
        config = GrabConfig("det", 200, 30, 800, seed=5)
        a = generate_grab_dataset(config)
        b = generate_grab_dataset(config)
        assert a.initial_edges == b.initial_edges
        assert [e.timestamp for e in a.increments] == [e.timestamp for e in b.increments]

    def test_degree_distribution_is_heavy_tailed(self, tiny_grab_dataset, dw):
        graph = tiny_grab_dataset.initial_graph(dw)
        dist = degree_distribution(graph)
        assert dist.power_law_exponent() < -0.5
        stats = compute_stats(graph)
        assert stats.max_degree > 5 * stats.avg_degree

    def test_bipartite_structure(self, tiny_grab_dataset):
        for src, dst, _w in tiny_grab_dataset.initial_edges:
            assert src.startswith("c") and dst.startswith("m")

    def test_effective_duration_default(self):
        config = GrabConfig("d", 100, 10, 1000)
        assert config.effective_duration == pytest.approx(10.0)
        explicit = GrabConfig("d", 100, 10, 1000, duration=99.0)
        assert explicit.effective_duration == 99.0


class TestFraudInjection:
    @pytest.fixture
    def rng(self):
        return np.random.default_rng(11)

    def test_collusion_block_is_dense(self, rng, dw):
        scenario = inject_collusion(rng, "ring", start=0.0)
        graph = dw.materialize([(e.src, e.dst, e.weight) for e in scenario.edges])
        members = scenario.communities[0].members
        assert subset_density(graph, members) > 10.0

    def test_patterns_have_expected_shapes(self, rng):
        collusion = inject_collusion(rng, "a", 0.0)
        hunter = inject_deal_hunter(rng, "b", 0.0)
        farming = inject_click_farming(rng, "c", 0.0)
        assert collusion.communities[0].pattern == "customer-merchant-collusion"
        assert hunter.communities[0].pattern == "deal-hunter"
        assert farming.communities[0].pattern == "click-farming"
        # deal-hunter has more users than merchants; click-farming even more so.
        assert len(farming.communities[0].members) > len(collusion.communities[0].members)

    def test_edges_are_labelled_and_within_burst(self, rng):
        scenario = inject_deal_hunter(rng, "burst", start=100.0, duration=50.0)
        community = scenario.communities[0]
        for edge in scenario.edges:
            assert edge.fraud_label == "burst"
            assert 100.0 <= edge.timestamp <= 150.0
        assert community.duration() == pytest.approx(50.0)

    def test_merge_rejects_duplicate_labels(self, rng):
        first = inject_collusion(rng, "dup", 0.0)
        second = inject_collusion(rng, "dup", 10.0)
        with pytest.raises(WorkloadError):
            first.merge(second)

    def test_standard_patterns_cover_all_three(self, rng):
        scenario = inject_standard_patterns(rng, 0.0, 1000.0)
        patterns = {c.pattern for c in scenario.communities}
        assert len(patterns) == 3
        assert len(scenario.communities) == 3
        assert scenario.community_map().keys() == {c.label for c in scenario.communities}

    def test_standard_patterns_scale(self, rng):
        small = inject_standard_patterns(rng, 0.0, 1000.0, scale=0.5)
        assert all(c.num_transactions >= 30 for c in small.communities)

    def test_standard_patterns_empty_span_rejected(self, rng):
        with pytest.raises(WorkloadError):
            inject_standard_patterns(rng, 10.0, 10.0)


class TestPublicGenerator:
    def test_counts_match_config(self, small_public_dataset):
        config = small_public_dataset.config
        total_edges = len(small_public_dataset.initial_edges) + len(small_public_dataset.increments)
        assert total_edges == config.num_edges
        assert len(small_public_dataset.vertices) == config.num_vertices

    def test_unweighted_edges_have_unit_weight(self, small_public_dataset):
        assert all(w == 1.0 for _s, _d, w in small_public_dataset.initial_edges)

    def test_weighted_variant(self):
        dataset = generate_public_dataset(PublicConfig("w", 300, 900, weighted=True, seed=2))
        weights = {w for _s, _d, w in dataset.initial_edges}
        assert len(weights) > 10

    def test_no_self_loops(self, small_public_dataset):
        for src, dst, _w in small_public_dataset.initial_edges:
            assert src != dst

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            PublicConfig("bad", 1, 10)
        with pytest.raises(WorkloadError):
            PublicConfig("bad", 10, 0)


class TestRegistry:
    def test_known_names(self):
        names = dataset_names()
        assert "grab1" in names and "epinion" in names and "grab1-small" in names
        assert "grab1-small" not in dataset_names(include_small=False)

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            generate_dataset("not-a-dataset")

    def test_small_dataset_generation(self):
        dataset = generate_dataset("wiki-vote-small", seed=1)
        assert dataset.name == "wiki-vote-small"
        assert dataset.num_increments() > 0

    def test_registry_average_degree_tracks_paper(self, dw):
        # grab4 has a higher average degree than grab1, as in Table 3.
        spec1 = DATASET_REGISTRY["grab1-small"]
        spec4 = DATASET_REGISTRY["grab4-small"]
        g1 = spec1.build(0).initial_graph(dw)
        g4 = spec4.build(0).initial_graph(dw)
        assert compute_stats(g4).avg_degree > compute_stats(g1).avg_degree

    def test_table3_rows(self):
        rows = table3_rows(names=["amazon-small", "grab1-small"], seed=0)
        assert len(rows) == 2
        assert {"dataset", "|V|", "|E|", "avg. degree", "increments", "type"} <= set(rows[0])

    def test_dataset_stats_row(self, small_public_dataset, dw):
        row = small_public_dataset.stats_row(dw)
        assert row["dataset"] == small_public_dataset.name
        assert row["|V|"] == len(small_public_dataset.vertices)
