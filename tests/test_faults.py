"""Fault-injection and hardening tests (``repro.serve.faults`` + friends).

The robustness contract under test:

* fault plans are validated, deterministic, and per-site counted;
* a failed WAL append consumes no sequence number and leaves no torn
  bytes behind once the next append self-repairs the tail;
* recovery stops at the **first invalid record past the last
  checkpoint** (CRC mismatch, flipped bit, regressed seq) and reports
  the boundary instead of silently diverging — and the recovered state
  equals an offline replay of the surviving prefix;
* pre-CRC (v1) logs still recover (the WAL format is versioned
  implicitly by the presence of the ``crc`` field);
* a truncated checkpoint payload fails its checksum and recovery falls
  back to the previous complete checkpoint with a longer WAL replay;
* WAL append failure degrades ingest to read-only (503 path raises
  :class:`~repro.errors.DegradedError`) while the probe re-enters
  read-write once appends succeed again.

Worker crash-loop fallback is covered end to end by the CI chaos smoke
(``benchmarks/fault_plans/worker_crashloop.json``); the in-process half
(budget exhaustion raises :class:`~repro.errors.WorkerFallbackError`,
never a bare ``AssertionError``) is asserted here without spawning
processes.
"""

from __future__ import annotations

import asyncio
import json
import random
import zlib

import pytest

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.api.events import InsertBatch
from repro.errors import ConfigError, DegradedError, WorkerFallbackError
from repro.graph.backend import create_graph
from repro.graph.delta import EdgeUpdate
from repro.serve.config import ServeConfig
from repro.serve.faults import SITE_KINDS, FaultInjector, FaultPlan, FaultRule
from repro.serve.ingest import IngestGateway, SnapshotService
from repro.serve.metrics import MetricsRegistry
from repro.serve.recovery import CheckpointStore, recover
from repro.serve.wal import WriteAheadLog, read_ops, scan_ops
from repro.storage.jsonl import JsonlWriter


@pytest.fixture(autouse=True)
def _single_backend_leg(graph_backend):
    if graph_backend != "array":
        pytest.skip("serve pins backend='array'; one leg is enough")


def random_dyadic_edges(seed: int, count: int, vertices: int = 40):
    rng = random.Random(seed)
    edges = []
    while len(edges) < count:
        src, dst = rng.randrange(vertices), rng.randrange(vertices)
        if src != dst:
            edges.append((f"v{src}", f"v{dst}", rng.randint(1, 128) / 32.0))
    return edges


def batch_ops(edges, size=10):
    return [
        InsertBatch(tuple(EdgeUpdate(s, d, w) for s, d, w in edges[i : i + size]))
        for i in range(0, len(edges), size)
    ]


def plan(*rules, seed=0):
    return FaultPlan([FaultRule(**rule) for rule in rules], seed=seed)


class TestFaultPlan:
    def test_round_trips_through_dict(self):
        original = FaultPlan.from_dict(
            {
                "seed": 42,
                "faults": [
                    {"site": "wal.append", "kind": "disk_full", "at": 3, "count": 2},
                    {"site": "worker.spawn", "kind": "crash", "count": None},
                ],
            }
        )
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(original.to_dict())))
        assert rebuilt.to_dict() == original.to_dict()
        assert rebuilt.seed == 42
        assert rebuilt.rules[1].count is None

    @pytest.mark.parametrize(
        "bad",
        [
            {"faults": [{"site": "nope", "kind": "disk_full"}]},
            {"faults": [{"site": "wal.append", "kind": "crash"}]},
            {"faults": [{"site": "wal.append", "kind": "eio", "at": 0}]},
            {"faults": [{"site": "wal.append", "kind": "eio", "typo": 1}]},
            {"faults": "not-a-list"},
            {"rules": []},
        ],
    )
    def test_invalid_plans_rejected(self, bad):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict(bad)

    def test_every_site_kind_pair_is_constructible(self):
        for site, kinds in SITE_KINDS.items():
            for kind in kinds:
                FaultRule(site=site, kind=kind)

    def test_rule_firing_window(self):
        rule = FaultRule(site="wal.append", kind="eio", at=3, count=2)
        assert [rule.fires(i) for i in range(1, 7)] == [
            False, False, True, True, False, False,
        ]
        forever = FaultRule(site="wal.append", kind="eio", at=2, count=None)
        assert not forever.fires(1) and forever.fires(2) and forever.fires(100)

    def test_injector_counts_sites_independently_and_logs(self):
        injector = FaultInjector(
            plan({"site": "wal.append", "kind": "disk_full", "at": 2, "count": 1})
        )
        payload = b'{"seq": 1}\n'
        assert injector.before_append(payload) == (payload, None)
        data, error = injector.before_append(payload)
        assert data == b"" and isinstance(error, OSError)
        assert injector.before_append(payload) == (payload, None)
        assert [(f["site"], f["invocation"]) for f in injector.fired] == [
            ("wal.append", 2)
        ]


class TestJsonlInjection:
    def test_disk_full_append_leaves_reader_state_clean(self, tmp_path):
        injector = FaultInjector(
            plan({"site": "wal.append", "kind": "disk_full", "at": 2, "count": 1})
        )
        writer = JsonlWriter(tmp_path / "log.jsonl", fsync=False, injector=injector)
        writer.append({"n": 1})
        with pytest.raises(OSError):
            writer.append({"n": 2})
        writer.append({"n": 3})
        writer.close()
        lines = (tmp_path / "log.jsonl").read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 3]

    def test_torn_write_is_repaired_by_next_append(self, tmp_path):
        injector = FaultInjector(
            plan({"site": "wal.append", "kind": "torn_write", "at": 2, "count": 1})
        )
        path = tmp_path / "log.jsonl"
        writer = JsonlWriter(path, fsync=False, injector=injector)
        writer.append({"n": 1})
        with pytest.raises(OSError):
            writer.append({"n": 2})
        # The torn fragment is on disk now — exactly what a crash would
        # leave — and the next append must truncate it away first.
        assert path.stat().st_size > writer.offset
        writer.append({"n": 3})
        writer.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 3]


class TestWalChecksums:
    def test_records_carry_crc_and_scan_clean(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        ops = batch_ops(random_dyadic_edges(1, 30))
        for op in ops:
            wal.append_op(op)
        wal.close()
        for line in WriteAheadLog.path_in(tmp_path).read_text().splitlines():
            record = json.loads(line)
            crc = record.pop("crc")
            canonical = json.dumps(
                record, separators=(",", ":"), default=str
            ).encode("utf-8")
            assert crc == zlib.crc32(canonical)
        scanned, _, corruption = scan_ops(WriteAheadLog.path_in(tmp_path))
        assert corruption is None
        assert [seq for seq, _ in scanned] == list(range(1, len(ops) + 1))

    def test_failed_append_consumes_no_seq(self, tmp_path):
        injector = FaultInjector(
            plan({"site": "wal.append", "kind": "eio", "at": 2, "count": 1})
        )
        wal = WriteAheadLog(tmp_path, fsync=False, injector=injector)
        ops = batch_ops(random_dyadic_edges(2, 30))
        assert wal.append_op(ops[0])[0] == 1
        with pytest.raises(OSError):
            wal.append_op(ops[1])
        assert wal.append_op(ops[2])[0] == 2
        wal.close()
        scanned, _, corruption = scan_ops(WriteAheadLog.path_in(tmp_path))
        assert corruption is None
        assert [seq for seq, _ in scanned] == [1, 2]

    def test_bit_flip_stops_scan_at_documented_boundary(self, tmp_path):
        flip_at = 4
        injector = FaultInjector(
            plan({"site": "wal.append", "kind": "bit_flip", "at": flip_at, "count": 1})
        )
        wal = WriteAheadLog(tmp_path, fsync=False, injector=injector)
        ops = batch_ops(random_dyadic_edges(3, 60))
        for op in ops:
            wal.append_op(op)  # the flip corrupts bytes, not the return
        wal.close()
        scanned, next_offset, corruption = scan_ops(WriteAheadLog.path_in(tmp_path))
        assert corruption is not None
        # Everything before the flipped record survives; nothing after it
        # is trusted (first-invalid-record rule).
        assert [seq for seq, _ in scanned] == list(range(1, flip_at))
        # The surviving prefix re-scans clean from offset zero up to the
        # reported boundary.
        data = WriteAheadLog.path_in(tmp_path).read_bytes()
        assert len(data[:next_offset].splitlines()) == flip_at - 1
        # Strict readers refuse the damaged log loudly.
        with pytest.raises(Exception):
            read_ops(WriteAheadLog.path_in(tmp_path))

    def test_legacy_v1_records_without_crc_still_recover(self, tmp_path):
        # Hand-write a pre-CRC log: same op encoding, no crc field.
        wal = WriteAheadLog(tmp_path, fsync=False)
        ops = batch_ops(random_dyadic_edges(4, 30))
        for op in ops:
            wal.append_op(op)
        wal.close()
        path = WriteAheadLog.path_in(tmp_path)
        stripped = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            record.pop("crc")
            stripped.append(json.dumps(record, separators=(",", ":")))
        path.write_text("\n".join(stripped) + "\n")
        scanned, _, corruption = scan_ops(path)
        assert corruption is None
        assert len(scanned) == len(ops)

    def test_recovery_equals_offline_replay_of_surviving_prefix(self, tmp_path):
        config = EngineConfig(
            semantics="DW",
            backend="array",
            serve=ServeConfig(port=0, wal_dir=str(tmp_path), fsync=False),
        )
        flip_at = 5
        injector = FaultInjector(
            plan({"site": "wal.append", "kind": "bit_flip", "at": flip_at, "count": 1})
        )
        wal = WriteAheadLog(tmp_path, fsync=False, injector=injector)
        store = CheckpointStore(tmp_path)
        live = SpadeClient(config)
        live.load([])
        store.save(live.snapshot(), wal_seq=0, wal_offset=0)
        for op in batch_ops(random_dyadic_edges(5, 80)):
            wal.append_op(op)
            live.apply([op])
        wal.close()

        recovered = recover(config)
        assert recovered.wal_corruption is not None
        assert recovered.wal_seq == flip_at - 1
        assert recovered.replayed_ops == flip_at - 1

        offline = SpadeClient(EngineConfig(semantics="DW", backend="array"))
        offline.load([])
        surviving, _, _ = scan_ops(WriteAheadLog.path_in(tmp_path))
        for _seq, op in surviving:
            offline.apply([op])
        recovered_report = recovered.client.detect()
        offline_report = offline.detect()
        assert recovered_report.vertices == offline_report.vertices
        assert recovered_report.density == offline_report.density
        assert recovered_report.peel_index == offline_report.peel_index


class TestCheckpointChecksums:
    def _store_with_two_checkpoints(self, tmp_path, injector=None):
        graph = create_graph("array")
        store = CheckpointStore(tmp_path, injector=injector)
        for seq, extra in ((3, 40), (6, 40)):
            for src, dst, weight in random_dyadic_edges(seq, extra):
                graph.add_edge(src, dst, weight)
            store.save(graph.freeze(), wal_seq=seq, wal_offset=seq * 100)
        return store

    def test_truncated_payload_falls_back_to_previous(self, tmp_path):
        injector = FaultInjector(
            plan({"site": "checkpoint.save", "kind": "truncate", "at": 2, "count": 1})
        )
        store = self._store_with_two_checkpoints(tmp_path, injector=injector)
        latest = store.latest()
        assert latest is not None
        assert latest[1]["wal_seq"] == 3  # the corrupt seq-6 payload lost
        assert store.fallbacks and "checksum mismatch" in store.fallbacks[0]

    def test_clean_checkpoints_verify_and_win(self, tmp_path):
        store = self._store_with_two_checkpoints(tmp_path)
        latest = store.latest()
        assert latest is not None
        assert latest[1]["wal_seq"] == 6
        assert latest[1]["payload_crc"] == zlib.crc32(
            (tmp_path / "checkpoint-000000000006.npz").read_bytes()
        )
        assert not store.fallbacks

    def test_save_is_atomic_no_tmp_strays(self, tmp_path):
        injector = FaultInjector(
            plan({"site": "checkpoint.save", "kind": "disk_full", "at": 1, "count": 1})
        )
        graph = create_graph("array")
        graph.add_edge("a", "b", 1.0)
        store = CheckpointStore(tmp_path, injector=injector)
        with pytest.raises(OSError):
            store.save(graph.freeze(), wal_seq=1, wal_offset=10)
        # The failed save left neither a payload nor a tmp stray behind.
        assert list(tmp_path.glob("checkpoint-*")) == []
        store.save(graph.freeze(), wal_seq=2, wal_offset=20)
        assert store.latest() is not None


class TestDegradedMode:
    def _gateway(self, tmp_path, injector, probe_interval_ms=20.0):
        client = SpadeClient(EngineConfig(semantics="DW", backend="array"))
        client.load([])
        lock = asyncio.Lock()
        service = SnapshotService(client, lock)
        config = ServeConfig(
            port=0,
            wal_dir=str(tmp_path),
            fsync=False,
            max_delay_ms=1.0,
            probe_interval_ms=probe_interval_ms,
        )
        wal = WriteAheadLog(tmp_path, fsync=False, injector=injector)
        gateway = IngestGateway(
            client, service, lock, config, MetricsRegistry(), wal=wal
        )
        return gateway, wal

    def test_wal_failure_degrades_then_probe_recovers(self, tmp_path):
        # Append 2 fails, probes 3-4 fail, probe 5 succeeds: the window is
        # wide enough that ingest must bounce exactly once.
        injector = FaultInjector(
            plan({"site": "wal.append", "kind": "disk_full", "at": 2, "count": 3})
        )
        gateway, wal = self._gateway(tmp_path, injector)

        async def scenario():
            gateway.start()
            try:
                first = await gateway.submit(
                    "insert", [EdgeUpdate("a", "b", 1.0)], 1
                )
                assert first["wal_seq"] == 1
                with pytest.raises(DegradedError):
                    await gateway.submit("insert", [EdgeUpdate("b", "c", 1.0)], 1)
                assert gateway.degraded
                with pytest.raises(DegradedError):
                    # Still parked read-only: fail fast, no WAL touch.
                    await gateway.submit("insert", [EdgeUpdate("c", "d", 1.0)], 1)
                for _ in range(200):
                    if not gateway.degraded:
                        break
                    await asyncio.sleep(0.02)
                assert not gateway.degraded, "probe never re-entered read-write"
                second = await gateway.submit(
                    "insert", [EdgeUpdate("d", "e", 1.0)], 1
                )
                return second
            finally:
                await gateway.stop()
                wal.close()

        second = asyncio.run(scenario())
        # The failed appends consumed no sequence numbers.
        assert second["wal_seq"] == 2
        scanned, _, corruption = scan_ops(WriteAheadLog.path_in(tmp_path))
        assert corruption is None
        assert [seq for seq, _ in scanned] == [1, 2]


class TestWorkerFallbackTyped:
    def test_budget_exhaustion_raises_typed_error(self):
        # A spawn that is always SIGKILLed exhausts the budget; the
        # failure must surface as WorkerFallbackError (satellite: no bare
        # assert in the respawn path), which WorkerEngine converts into
        # in-process fallback (covered end to end by the chaos smoke).
        from repro.peeling.semantics import dw_semantics
        from repro.serve.workers import WorkerEngine

        injector = FaultInjector(
            plan({"site": "worker.spawn", "kind": "crash", "at": 1, "count": None})
        )
        engine = WorkerEngine(
            dw_semantics(),
            num_shards=2,
            backend="array",
            respawn_budget=2,
            respawn_backoff=0.01,
            injector=injector,
        )
        try:
            engine.load_edges(random_dyadic_edges(6, 40))
            assert engine.fallback
            assert "after 2 attempts" in (engine.fallback_reason or "")
            # Fallback still answers: the in-process shards serve.
            report = engine.detect()
            assert report.vertices
        finally:
            engine.close()

    def test_fallback_error_is_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(WorkerFallbackError, ReproError)
        assert not issubclass(WorkerFallbackError, AssertionError)
