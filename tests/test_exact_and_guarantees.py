"""Tests for the exact solvers and the guarantee / axiom checks."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.graph.graph import DynamicGraph
from repro.peeling.exact import brute_force_densest, goldberg_densest
from repro.peeling.guarantees import (
    check_approximation_guarantee,
    is_valid_peeling_sequence,
    verify_axioms,
)
from repro.peeling.semantics import dw_semantics, subset_density
from repro.peeling.static import peel

from tests.helpers import random_weighted_edges


class TestBruteForce:
    def test_triangle_is_optimal(self, triangle_graph):
        result = brute_force_densest(triangle_graph)
        assert result.subset == frozenset({"a", "b", "c"})
        assert result.density == pytest.approx(1.0)

    def test_empty_graph(self):
        result = brute_force_densest(DynamicGraph())
        assert result.subset == frozenset()
        assert result.density == 0.0

    def test_limit_enforced(self):
        graph = DynamicGraph(vertices=[f"v{i}" for i in range(25)])
        with pytest.raises(ReproError):
            brute_force_densest(graph)

    def test_vertex_weights_matter(self):
        graph = DynamicGraph()
        graph.add_vertex("heavy", 10.0)
        graph.add_edge("a", "b", 1.0)
        result = brute_force_densest(graph)
        assert result.subset == frozenset({"heavy"})
        assert result.density == pytest.approx(10.0)


class TestGoldberg:
    def test_matches_brute_force_on_small_graphs(self):
        rng = random.Random(11)
        for _ in range(6):
            edges = random_weighted_edges(9, 18, rng)
            graph = dw_semantics().materialize(edges)
            exact = brute_force_densest(graph)
            flow = goldberg_densest(graph)
            assert flow.density == pytest.approx(exact.density, rel=1e-4, abs=1e-4)

    def test_flow_result_is_a_real_subset(self, two_block_graph):
        result = goldberg_densest(two_block_graph)
        assert result.subset <= set(two_block_graph.vertices())
        assert subset_density(two_block_graph, result.subset) == pytest.approx(
            result.density, rel=1e-6
        )

    def test_two_block_graph_optimum_is_heavy_clique(self, two_block_graph):
        result = goldberg_densest(two_block_graph)
        assert result.subset == frozenset({"h0", "h1", "h2", "h3"})


class TestApproximationGuarantee:
    def test_guarantee_holds_on_random_graphs(self):
        rng = random.Random(2)
        for _ in range(8):
            edges = random_weighted_edges(10, 25, rng)
            graph = dw_semantics().materialize(edges)
            result = peel(graph, "DW")
            assert check_approximation_guarantee(graph, result, exact="brute")

    def test_guarantee_with_flow_solver(self, two_block_graph):
        result = peel(two_block_graph, "DW")
        assert check_approximation_guarantee(two_block_graph, result, exact="flow")

    def test_unknown_solver_rejected(self, triangle_graph):
        result = peel(triangle_graph)
        with pytest.raises(ValueError):
            check_approximation_guarantee(triangle_graph, result, exact="magic")

    def test_empty_graph_trivially_satisfies(self):
        result = peel(DynamicGraph())
        assert check_approximation_guarantee(DynamicGraph(), result)


class TestSequenceValidation:
    def test_valid_sequence_accepted(self, random_graph):
        result = peel(random_graph)
        assert is_valid_peeling_sequence(random_graph, result.order, result.weights)

    def test_wrong_cover_rejected(self, triangle_graph):
        check = is_valid_peeling_sequence(triangle_graph, ["a", "b", "c"])
        assert not check
        assert "cover" in check.message

    def test_non_greedy_order_rejected(self, triangle_graph):
        # Peeling "a" (weight 2.25) before "d" (weight 0.25) is not greedy.
        check = is_valid_peeling_sequence(triangle_graph, ["a", "b", "c", "d"])
        assert not check
        assert check.failing_position == 0

    def test_wrong_recorded_weights_rejected(self, triangle_graph):
        result = peel(triangle_graph)
        bad_weights = [w + 1.0 for w in result.weights]
        check = is_valid_peeling_sequence(triangle_graph, result.order, bad_weights)
        assert not check


class TestAxioms:
    def test_axioms_hold_for_weighted_graph(self, random_graph):
        assert verify_axioms(random_graph, samples=10, seed=1)

    def test_axioms_hold_for_dataset_graph(self, tiny_grab_dataset, dw):
        graph = tiny_grab_dataset.initial_graph(dw)
        assert verify_axioms(graph, samples=5, seed=2)

    def test_axioms_trivial_for_tiny_graph(self):
        graph = DynamicGraph(vertices=["a", "b"])
        assert verify_axioms(graph)
