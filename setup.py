"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments where the isolated
PEP 517 build path cannot download its build requirements.
"""

from setuptools import setup

setup()
